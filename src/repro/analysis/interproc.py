"""Call-aware interval significance analysis (function summaries).

The intraprocedural analysis treats ``jr``/``jalr`` as jumping to *every*
return site, so the state after any call is the join over every call
site of every function — callee-saved registers, arguments and spilled
values all collapse toward TOP.  This module re-analyzes the same CFG
function by function:

* **functions** are the program entry plus every ``jal`` target; a
  function's body is what its entry reaches without following call
  edges (``jal`` flows to the return site through the callee's summary)
  and ``jr $ra`` blocks are its exits;
* **contexts** — the register intervals and incoming stack-argument
  slots at a function's entry — are joined (with widening) over all of
  its call sites, so argument intervals propagate into callees;
* **summaries** — the joined exit state plus the function's transitive
  store effects — flow back to each call site, so return values
  ($v0/$v1) keep their proven widths;
* a **symbolic tag** per abstract value proves preservation instead of
  assuming a calling convention: a register whose exit value is still
  ``("entry", r)`` provably holds its entry value, so the *caller's*
  interval survives the call.  MiniC's callee-saved discipline becomes
  a theorem, and hand-written assembly that clobbers an $s-register is
  still handled soundly (the summary interval is used instead);
* **stack slots** are tracked sp-relatively (``("sp", delta)`` symbols
  survive ``addiu $sp`` adjustments), so a value spilled with ``sw``
  and reloaded with ``lw`` keeps its interval *and* its symbol — this
  is what makes save/restore of $ra and the $s-registers provable.
  Stores through non-sp pointers kill only the slots their address
  interval can reach; a callee's effect on the caller's frame is
  summarized by its maximal sp-relative store offset and the joined
  address interval of its escaped (non-sp) stores.

The result is sound over-approximation, never trust: anything the
module cannot prove (an indirect ``jalr``, a ``jr`` through a register
other than ``$ra``, a function that returns with an unproven return
address, a diverging fixpoint) raises :class:`InterprocBailout` and the
caller falls back to the whole-program intraprocedural analysis.
Instructions in blocks no function analysis covers are reported at TOP
by :func:`interprocedural_bounds`, which therefore bounds exactly the
same reachable instruction set as the intraprocedural analysis.
"""

from repro.analysis.cfg import build_cfg, reachable_blocks
from repro.analysis.significance import (
    HI_SLOT,
    INT_MAX,
    INT_MIN,
    LO_SLOT,
    NUM_SLOTS,
    OperandBounds,
    TOP,
    _refine_branch,
    const_interval,
    interval_bytes,
    join_interval,
    transfer_instruction,
    widen_interval,
)
from repro.asm.program import STACK_TOP
from repro.isa.opcodes import LOAD_SIZES, STORE_SIZES, Funct, InstrClass, Opcode

SP = 29
RA = 31

#: Per-block worklist visits allowed per function fixpoint (scaled by
#: block count); overflow raises :class:`InterprocBailout` rather than
#: looping, and the caller falls back to the intraprocedural analysis.
INNER_VISIT_FACTOR = 64

#: Function (re-)analyses allowed across the whole-program fixpoint.
OUTER_VISIT_FACTOR = 64


class InterprocBailout(Exception):
    """The program defeats the interprocedural model; fall back."""


# --------------------------------------------------------- abstract values
#
# An abstract value is ``(interval, sym)``.  ``sym`` is ``None`` (no
# provenance proof), ``("entry", slot)`` (provably the slot's value at
# function entry) or ``("sp", delta)`` (provably entry-$sp plus a known
# byte delta).  A frame state is ``(regs, slots)``: a NUM_SLOTS tuple of
# values plus a dict of sp-relative word slots keyed by entry-relative
# byte offset.


def _join_value(a, b):
    return (join_interval(a[0], b[0]), a[1] if a[1] == b[1] else None)


def _widen_value(old, new):
    return (widen_interval(old[0], new[0]), new[1] if old[1] == new[1] else None)


def _join_state(a, b):
    regs = tuple(_join_value(x, y) for x, y in zip(a[0], b[0]))
    slots = {}
    for key, value in a[1].items():
        other = b[1].get(key)
        if other is not None:
            slots[key] = _join_value(value, other)
    return (regs, slots)


def _widen_state(old, new):
    regs = tuple(_widen_value(x, y) for x, y in zip(old[0], new[0]))
    slots = {}
    for key, value in new[1].items():
        before = old[1].get(key)
        slots[key] = value if before is None else _widen_value(before, value)
    return (regs, slots)


class _Context:
    """Register intervals + incoming stack slots at a function entry."""

    __slots__ = ("regs", "slots")

    def __init__(self, regs, slots):
        self.regs = regs
        self.slots = slots

    def __eq__(self, other):
        return (
            isinstance(other, _Context)
            and other.regs == self.regs
            and other.slots == self.slots
        )

    __hash__ = None


def _join_context(a, b):
    regs = tuple(join_interval(x, y) for x, y in zip(a.regs, b.regs))
    slots = {}
    for key, value in a.slots.items():
        other = b.slots.get(key)
        if other is not None:
            slots[key] = join_interval(value, other)
    return _Context(regs, slots)


def _widen_context(old, new):
    regs = tuple(widen_interval(x, y) for x, y in zip(old.regs, new.regs))
    slots = {}
    for key, value in new.slots.items():
        before = old.slots.get(key)
        slots[key] = value if before is None else widen_interval(before, value)
    return _Context(regs, slots)


class Summary:
    """One function's joined exit state plus its store effects.

    ``regs`` are the exit intervals (absolute); ``preserved[i]`` is True
    when slot ``i`` provably still holds its entry value at every exit;
    ``max_sp_key`` is the highest entry-relative byte offset of any
    sp-relative store the function (or a callee) performs, ``None`` when
    there are none; ``escaped`` is the joined address interval of every
    store whose base could not be proven sp-relative, ``None`` when
    there are none.
    """

    __slots__ = ("regs", "preserved", "max_sp_key", "escaped")

    def __init__(self, regs, preserved, max_sp_key, escaped):
        self.regs = regs
        self.preserved = preserved
        self.max_sp_key = max_sp_key
        self.escaped = escaped

    def __eq__(self, other):
        return (
            isinstance(other, Summary)
            and other.regs == self.regs
            and other.preserved == self.preserved
            and other.max_sp_key == self.max_sp_key
            and other.escaped == self.escaped
        )

    __hash__ = None


def _join_summary(a, b):
    if a.max_sp_key is None:
        max_key = b.max_sp_key
    elif b.max_sp_key is None:
        max_key = a.max_sp_key
    else:
        max_key = max(a.max_sp_key, b.max_sp_key)
    if a.escaped is None:
        escaped = b.escaped
    elif b.escaped is None:
        escaped = a.escaped
    else:
        escaped = join_interval(a.escaped, b.escaped)
    return Summary(
        tuple(join_interval(x, y) for x, y in zip(a.regs, b.regs)),
        tuple(x and y for x, y in zip(a.preserved, b.preserved)),
        max_key,
        escaped,
    )


def _widen_summary(old, new):
    escaped = new.escaped
    if old.escaped is not None and escaped is not None:
        escaped = widen_interval(old.escaped, escaped)
    return Summary(
        tuple(widen_interval(x, y) for x, y in zip(old.regs, new.regs)),
        new.preserved,
        new.max_sp_key,
        escaped,
    )


class _Effects:
    """May-store effects accumulated while analyzing one function."""

    __slots__ = ("max_sp_key", "escaped")

    def __init__(self):
        self.max_sp_key = None
        self.escaped = None

    def sp_store(self, key):
        if self.max_sp_key is None or key > self.max_sp_key:
            self.max_sp_key = key

    def escaped_store(self, address):
        if self.escaped is None:
            self.escaped = address
        else:
            self.escaped = join_interval(self.escaped, address)

    def include_call(self, summary, delta):
        """Fold a callee's effects, translated into this frame."""
        if summary.max_sp_key is not None:
            if delta is None:
                self.escaped_store(TOP)
            else:
                self.sp_store(summary.max_sp_key + delta)
        if summary.escaped is not None:
            self.escaped_store(summary.escaped)


# ------------------------------------------------------- instruction step


def _clobber_keys(slots, key, size):
    """Drop slots overlapping the byte range ``[key, key + size)``."""
    dead = [k for k in slots if k < key + size and k + 4 > key]
    for k in dead:
        del slots[k]


def _clobber_escaped(slots, address, sp_entry, size=4):
    """Drop slots an escaped store at ``address`` could reach.

    A slot at entry-relative offset ``k`` occupies addresses
    ``sp_entry + k .. sp_entry + k + 3``; any slot whose range can
    intersect the store's is killed.  ``sp_entry is None`` means the
    program passed the :func:`_sp_confined` check — no escaped store
    can alias the stack, so nothing is killed.
    """
    if sp_entry is None:
        return
    if address == TOP or sp_entry == TOP:
        slots.clear()
        return
    lo, hi = address
    sp_lo, sp_hi = sp_entry
    dead = [
        k for k in slots
        if not (hi + size - 1 < sp_lo + k or lo > sp_hi + k + 3)
    ]
    for k in dead:
        del slots[k]


def _move_sym(instr, regs):
    """Symbolic tag of the value a non-memory instruction computes."""
    opcode = instr.opcode
    if opcode in (Opcode.ADDI, Opcode.ADDIU):
        sym = regs[instr.rs][1]
        if sym is not None:
            if sym[0] == "sp":
                return ("sp", sym[1] + instr.imm)
            if instr.imm == 0:
                return sym
        return None
    if opcode == Opcode.SPECIAL:
        funct = instr.funct
        if funct in (Funct.ADD, Funct.ADDU, Funct.OR, Funct.XOR):
            if instr.rt == 0:
                return regs[instr.rs][1]
            if instr.rs == 0:
                return regs[instr.rt][1]
        elif funct in (Funct.SUB, Funct.SUBU) and instr.rt == 0:
            return regs[instr.rs][1]
        elif funct == Funct.SLL and instr.shamt == 0:
            return regs[instr.rt][1]
    return None


def _apply(instr, pc, regs, slots, sp_entry, effects):
    """Abstractly execute one non-call instruction on a frame state.

    ``regs`` (list of NUM_SLOTS values) and ``slots`` are updated in
    place.  Returns the interval of the value the instruction computes,
    mirroring :func:`~repro.analysis.significance.transfer_instruction`.
    """
    opcode = instr.opcode
    if opcode in STORE_SIZES:
        size = STORE_SIZES[opcode]
        base_iv, base_sym = regs[instr.rs]
        if base_sym is not None and base_sym[0] == "sp":
            key = base_sym[1] + instr.imm
            _clobber_keys(slots, key, size)
            if size == 4:
                slots[key] = regs[instr.rt]
            effects.sp_store(key)
        else:
            lo = base_iv[0] + instr.imm
            hi = base_iv[1] + instr.imm
            address = TOP if lo < INT_MIN or hi > INT_MAX else (lo, hi)
            effects.escaped_store(address)
            _clobber_escaped(slots, address, sp_entry, size)
        return None
    if opcode == Opcode.LW:
        base_iv, base_sym = regs[instr.rs]
        if base_sym is not None and base_sym[0] == "sp":
            value = slots.get(base_sym[1] + instr.imm, (TOP, None))
        else:
            value = (TOP, None)
        if instr.rt != 0:
            regs[instr.rt] = value
        return value[0]
    sym = _move_sym(instr, regs)
    intervals = [pair[0] for pair in regs]
    value = transfer_instruction(instr, pc, intervals)
    if opcode == Opcode.SPECIAL and instr.funct in (
        Funct.MULT, Funct.MULTU, Funct.DIV, Funct.DIVU, Funct.MTHI, Funct.MTLO,
    ):
        regs[HI_SLOT] = (intervals[HI_SLOT], None)
        regs[LO_SLOT] = (intervals[LO_SLOT], None)
        return value
    dest = instr.destination_register()
    if dest is not None:
        regs[dest] = (intervals[dest], sym)
    return value


def _sp_confined(cfg):
    """True when stack addresses provably never leave ``$sp``.

    Holds when every instruction that sources ``$sp`` is one of: an
    ``addi``/``addiu`` adjusting ``$sp`` itself, or a load/store using
    ``$sp`` purely as the base (and never *storing* ``$sp``), and the
    only writes to ``$sp`` are those same ``addi``/``addiu`` forms.
    Then no other register and no memory word can ever hold a stack
    address, so a store through any non-``$sp`` pointer cannot alias
    the frame slots the analysis tracks.  MiniC codegen satisfies this
    by construction (there is no address-of-local); hand-written
    assembly that leaks ``$sp`` falls back to the conservative
    interval-overlap aliasing in :func:`_clobber_escaped`.
    """
    for instr in cfg.instructions:
        opcode = instr.opcode
        sp_adjust = (
            opcode in (Opcode.ADDI, Opcode.ADDIU)
            and instr.rs == SP
            and instr.rt == SP
        )
        if SP in instr.source_registers() and not sp_adjust:
            if opcode in LOAD_SIZES and instr.rs == SP:
                continue
            if opcode in STORE_SIZES and instr.rs == SP and instr.rt != SP:
                continue
            return False
        if instr.destination_register() == SP and not sp_adjust:
            return False
    return True


# ------------------------------------------------------ function geometry


def _is_return(instr):
    return (
        instr.opcode == Opcode.SPECIAL
        and instr.funct == Funct.JR
        and instr.rs == RA
    )


def _is_unsupported_indirect(instr):
    if instr.opcode != Opcode.SPECIAL:
        return False
    if instr.funct == Funct.JALR:
        return True
    return instr.funct == Funct.JR and instr.rs != RA


class _Function:
    """One function's block membership and call/exit structure."""

    __slots__ = ("entry_pc", "entry_block", "blocks", "exit_blocks",
                 "return_block")

    def __init__(self, entry_pc, entry_block):
        self.entry_pc = entry_pc
        self.entry_block = entry_block
        self.blocks = set()
        self.exit_blocks = set()
        #: Call-block index -> return-site block index (or None when the
        #: call is the last instruction of the text segment).
        self.return_block = {}


def _partition(cfg, entry_pc):
    """Blocks reachable from ``entry_pc`` without following call edges."""
    fn = _Function(entry_pc, cfg.block_at(entry_pc).index)
    stack = [fn.entry_block]
    fn.blocks.add(fn.entry_block)

    def visit(index):
        if index not in fn.blocks:
            fn.blocks.add(index)
            stack.append(index)

    while stack:
        block = cfg.blocks[stack.pop()]
        term = block.terminator
        if _is_unsupported_indirect(term):
            raise InterprocBailout(
                "indirect control at 0x%08x" % (block.end - 4)
            )
        if term.opcode == Opcode.JAL:
            site = block.end  # the instruction after the call
            try:
                ret = cfg.block_at(site).index
            except KeyError:
                ret = None
            fn.return_block[block.index] = ret
            if ret is not None:
                visit(ret)
        elif _is_return(term):
            fn.exit_blocks.add(block.index)
        else:
            for successor in block.successors:
                visit(successor)
    return fn


# --------------------------------------------------------- function solve


def _entry_state(context):
    regs = []
    for index in range(NUM_SLOTS):
        interval = context.regs[index]
        if index == 0:
            regs.append(((0, 0), None))
        elif index == SP:
            regs.append((interval, ("sp", 0)))
        else:
            regs.append((interval, ("entry", index)))
    slots = {key: (value, None) for key, value in context.slots.items()}
    return (tuple(regs), slots)


def _call_context(regs, slots, call_pc):
    """The callee-entry context one call site contributes."""
    ctx_regs = [pair[0] for pair in regs]
    ctx_regs[RA] = const_interval(call_pc + 4)
    ctx_regs[0] = (0, 0)
    ctx_slots = {}
    sym = regs[SP][1]
    if sym is not None and sym[0] == "sp":
        delta = sym[1]
        for key, (interval, _s) in slots.items():
            relative = key - delta
            if relative >= 0:
                ctx_slots[relative] = interval
    return _Context(tuple(ctx_regs), ctx_slots)


def _apply_call(regs, slots, call_pc, summary, sp_entry):
    """The caller state after a summarized call returns."""
    post = list(regs)
    post[RA] = (const_interval(call_pc + 4), None)
    sym = regs[SP][1]
    delta = sym[1] if sym is not None and sym[0] == "sp" else None
    out_regs = []
    for index in range(NUM_SLOTS):
        if index == 0:
            out_regs.append(((0, 0), None))
        elif summary.preserved[index]:
            out_regs.append(post[index])
        else:
            out_regs.append((summary.regs[index], None))
    out_slots = dict(slots)
    if delta is None:
        out_slots = {}
    else:
        if summary.max_sp_key is not None:
            top = summary.max_sp_key + delta + 3
            dead = [key for key in out_slots if key <= top]
            for key in dead:
                del out_slots[key]
        if summary.escaped is not None:
            _clobber_escaped(out_slots, summary.escaped, sp_entry)
    return (tuple(out_regs), out_slots)


def _edge_state(cfg, block, successor, state):
    """Branch-edge interval refinement lifted to frame states."""
    term = block.terminator
    if term.iclass is not InstrClass.BRANCH:
        return state
    last_pc = block.end - 4
    taken = cfg.block_of(term.branch_target(last_pc)).index
    fallthrough = cfg.block_of(last_pc + 4).index
    if taken == fallthrough:
        return state
    intervals = tuple(pair[0] for pair in state[0])
    refined = _refine_branch(term, intervals, successor == taken)
    if refined is None:
        return None
    if refined == intervals:
        return state
    regs = tuple(
        (refined[index], state[0][index][1]) for index in range(NUM_SLOTS)
    )
    return (regs, state[1])


class _FunctionResult:
    __slots__ = ("in_states", "call_contexts", "summary")

    def __init__(self, in_states, call_contexts, summary):
        self.in_states = in_states
        self.call_contexts = call_contexts
        self.summary = summary


def _analyze_function(cfg, fn, context, summaries, confined=False):
    """One pass of the per-function worklist fixpoint."""
    sp_entry = None if confined else context.regs[SP]
    in_states = {fn.entry_block: _entry_state(context)}
    exit_out = None
    call_contexts = {}
    effects = _Effects()
    work = [fn.entry_block]
    queued = {fn.entry_block}
    visits = 0
    cap = INNER_VISIT_FACTOR * len(fn.blocks) + 256

    def flow(successor, incoming):
        old = in_states.get(successor)
        if old is None:
            in_states[successor] = incoming
        else:
            joined = _join_state(old, incoming)
            if joined == old:
                return
            in_states[successor] = _widen_state(old, joined)
        if successor not in queued:
            queued.add(successor)
            work.append(successor)

    while work:
        index = work.pop()
        queued.discard(index)
        visits += 1
        if visits > cap:
            raise InterprocBailout(
                "function at 0x%08x does not converge" % fn.entry_pc
            )
        block = cfg.blocks[index]
        state = in_states[index]
        regs = list(state[0])
        slots = dict(state[1])
        term = block.terminator
        is_call = term.opcode == Opcode.JAL
        body = block.instructions[:-1] if is_call else block.instructions
        pc = block.start
        for instr in body:
            _apply(instr, pc, regs, slots, sp_entry, effects)
            pc += 4
        if is_call:
            call_pc = block.end - 4
            callee = term.jump_target(call_pc)
            contributed = _call_context(regs, slots, call_pc)
            existing = call_contexts.get(callee)
            call_contexts[callee] = (
                contributed if existing is None
                else _join_context(existing, contributed)
            )
            summary = summaries.get(callee)
            if summary is not None:
                sym = regs[SP][1]
                delta = sym[1] if sym is not None and sym[0] == "sp" else None
                effects.include_call(summary, delta)
                successor = fn.return_block.get(index)
                if successor is not None:
                    flow(
                        successor,
                        _apply_call(regs, slots, call_pc, summary, sp_entry),
                    )
        elif index in fn.exit_blocks:
            out = (tuple(regs), slots)
            ra_interval, ra_sym = regs[RA]
            if ra_sym == ("entry", RA):
                exit_out = (
                    out if exit_out is None else _join_state(exit_out, out)
                )
            elif ra_interval[0] == ra_interval[1]:
                # $ra holds a known constant (a jal wrote it in *this*
                # frame): the jr is a direct jump, not a return.  This
                # happens on statically feasible but concretely dead
                # paths, e.g. an exit syscall falling through into the
                # next function's body.
                target = ra_interval[0]
                if target != 0:  # 0 is the boot $ra: the machine halts
                    try:
                        successor = cfg.block_at(target).index
                    except KeyError:
                        raise InterprocBailout(
                            "jr $ra at 0x%08x targets mid-block 0x%08x"
                            % (block.end - 4, target)
                        )
                    if successor not in fn.blocks:
                        raise InterprocBailout(
                            "jr $ra at 0x%08x leaves the function"
                            % (block.end - 4)
                        )
                    flow(successor, out)
            else:
                raise InterprocBailout(
                    "function at 0x%08x returns through an unproven $ra"
                    % fn.entry_pc
                )
        else:
            out = (tuple(regs), slots)
            for successor in block.successors:
                refined = _edge_state(cfg, block, successor, out)
                if refined is not None:
                    flow(successor, refined)

    summary = None
    if exit_out is not None:
        preserved = []
        for index in range(NUM_SLOTS):
            sym = exit_out[0][index][1]
            if index == 0:
                preserved.append(True)
            elif index == SP:
                preserved.append(sym == ("sp", 0))
            else:
                preserved.append(sym == ("entry", index))
        if not preserved[RA]:
            raise InterprocBailout(
                "function at 0x%08x returns through an unproven $ra"
                % fn.entry_pc
            )
        summary = Summary(
            tuple(pair[0] for pair in exit_out[0]),
            tuple(preserved),
            effects.max_sp_key,
            effects.escaped,
        )
    return _FunctionResult(in_states, call_contexts, summary)


# ------------------------------------------------------- program fixpoint


def _boot_context(initial_registers):
    if initial_registers is not None:
        regs = [TOP] * NUM_SLOTS
        for reg, value in initial_registers.items():
            regs[reg] = const_interval(value)
        regs[0] = (0, 0)
        return _Context(tuple(regs), {})
    regs = [(0, 0)] * NUM_SLOTS
    regs[SP] = const_interval(STACK_TOP)
    return _Context(tuple(regs), {})


def interprocedural_significance(cfg, initial_registers=None):
    """Per-instruction bounds from the summary-based fixpoint.

    Returns ``{pc: OperandBounds}`` covering exactly the instructions in
    entry-reachable blocks (instructions no function analysis covers are
    reported at TOP).  Raises :class:`InterprocBailout` when the program
    defeats the model; callers fall back to the intraprocedural
    analysis, which is always applicable.
    """
    entry_pc = cfg.program.entry
    entries = {entry_pc}
    entries.update(cfg.call_target_pcs)
    functions = {pc: _partition(cfg, pc) for pc in sorted(entries)}
    confined = _sp_confined(cfg)

    contexts = {entry_pc: _boot_context(initial_registers)}
    summaries = {}
    callers = {pc: set() for pc in functions}
    results = {}
    work = [entry_pc]
    queued = {entry_pc}
    visits = 0
    cap = OUTER_VISIT_FACTOR * len(functions) + 64

    def push(pc):
        if pc not in queued:
            queued.add(pc)
            work.append(pc)

    while work:
        current = work.pop(0)
        queued.discard(current)
        visits += 1
        if visits > cap:
            raise InterprocBailout("interprocedural fixpoint diverges")
        result = _analyze_function(
            cfg, functions[current], contexts[current], summaries,
            confined=confined,
        )
        results[current] = result
        for callee, contributed in result.call_contexts.items():
            callers[callee].add(current)
            old = contexts.get(callee)
            if old is None:
                contexts[callee] = contributed
                push(callee)
            else:
                merged = _join_context(old, contributed)
                if merged != old:
                    contexts[callee] = _widen_context(old, merged)
                    push(callee)
        if result.summary is not None:
            old = summaries.get(current)
            if old is None:
                merged = result.summary
            else:
                merged = _join_summary(old, result.summary)
                if merged != old:
                    merged = _widen_summary(old, merged)
            if merged != old:
                summaries[current] = merged
                for caller in callers[current]:
                    push(caller)

    bounds = {}
    for pc, fn in functions.items():
        result = results.get(pc)
        if result is None:
            continue
        _record_bounds(cfg, fn, result, contexts[pc], bounds, confined)
    _fill_top(cfg, bounds)
    return bounds


def _merge_bound(bounds, pc, reads, write):
    old = bounds.get(pc)
    if old is None:
        bounds[pc] = OperandBounds(pc, reads, write)
        return
    merged_reads = tuple(max(a, b) for a, b in zip(old.read_bytes, reads))
    if old.write_bytes is None or write is None:
        merged_write = old.write_bytes if write is None else write
    else:
        merged_write = max(old.write_bytes, write)
    bounds[pc] = OperandBounds(pc, merged_reads, merged_write)


def _record_bounds(cfg, fn, result, context, bounds, confined=False):
    """Per-pc operand bounds from one function's converged states."""
    sp_entry = None if confined else context.regs[SP]
    effects = _Effects()
    for index, state in result.in_states.items():
        block = cfg.blocks[index]
        regs = list(state[0])
        slots = dict(state[1])
        term = block.terminator
        is_call = term.opcode == Opcode.JAL
        pc = block.start
        for instr in block.instructions:
            reads = tuple(
                interval_bytes(regs[reg][0])
                for reg in instr.source_registers()
            )
            if is_call and instr is term:
                value = const_interval(pc + 4)
            else:
                value = _apply(instr, pc, regs, slots, sp_entry, effects)
            write = None if value is None else interval_bytes(value)
            _merge_bound(bounds, pc, reads, write)
            pc += 4


def _fill_top(cfg, bounds):
    """TOP bounds for reachable instructions no function covered."""
    for index in reachable_blocks(cfg):
        block = cfg.blocks[index]
        pc = block.start
        for instr in block.instructions:
            if pc not in bounds:
                state = [TOP] * NUM_SLOTS
                value = transfer_instruction(instr, pc, state)
                bounds[pc] = OperandBounds(
                    pc,
                    tuple(4 for _ in instr.source_registers()),
                    None if value is None else interval_bytes(value),
                )
            pc += 4


def interprocedural_bounds(program, initial_registers=None):
    """Convenience wrapper: build the CFG and run the interprocedural
    fixpoint (raises :class:`InterprocBailout` on unsupported shapes)."""
    cfg = build_cfg(program)
    return interprocedural_significance(
        cfg, initial_registers=initial_registers
    )
