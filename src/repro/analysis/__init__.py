"""Static analysis over assembled programs: CFG, dataflow, significance.

The paper's premise is that operand significance is highly predictable —
most values need only their low-order byte(s) — but the repo measured it
only *dynamically* (trace walks).  This package turns the observation
into a checkable static prediction:

* :mod:`repro.analysis.cfg` — basic-block control-flow graphs over
  :class:`~repro.asm.program.Program`;
* :mod:`repro.analysis.dataflow` — a small generic forward/backward
  worklist fixpoint solver shared by every analysis;
* :mod:`repro.analysis.significance` — an interval abstract domain per
  register that bounds each operand's significant-byte count under the
  extension-bit schemes of :mod:`repro.core.extension`;
* :mod:`repro.analysis.lints` — liveness-based dead-write detection,
  unreachable-block detection and use-before-def warnings;
* :mod:`repro.analysis.driver` — the ``repro analyze`` summary payload
  (versioned, result-store persistable);
* :mod:`repro.analysis.crosscheck` — soundness validation of the static
  bounds against dynamically observed values (a sound bound never
  claims fewer significant bytes than a trace exhibits).
"""

from repro.analysis.cfg import CFG, BasicBlock, CFGError, build_cfg
from repro.analysis.crosscheck import crosscheck_records, crosscheck_workload
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.driver import (
    ANALYSIS_VERSION,
    analyze_program,
    analyze_workload,
    unwrap_analysis_payload,
    wrap_analysis_payload,
)
from repro.analysis.lints import Lint, lint_program, liveness, unreachable_blocks
from repro.analysis.significance import (
    SignificanceAnalysis,
    operand_bounds,
    significance_bounds,
)

__all__ = [
    "ANALYSIS_VERSION",
    "BasicBlock",
    "CFG",
    "CFGError",
    "DataflowAnalysis",
    "Lint",
    "SignificanceAnalysis",
    "analyze_program",
    "analyze_workload",
    "build_cfg",
    "crosscheck_records",
    "crosscheck_workload",
    "lint_program",
    "liveness",
    "operand_bounds",
    "significance_bounds",
    "solve",
    "unreachable_blocks",
    "unwrap_analysis_payload",
    "wrap_analysis_payload",
]
