"""Static analysis over assembled programs: CFG, dataflow, significance.

The paper's premise is that operand significance is highly predictable —
most values need only their low-order byte(s) — but the repo measured it
only *dynamically* (trace walks).  This package turns the observation
into a checkable static prediction:

* :mod:`repro.analysis.cfg` — basic-block control-flow graphs over
  :class:`~repro.asm.program.Program`;
* :mod:`repro.analysis.dataflow` — a small generic forward/backward
  worklist fixpoint solver shared by every analysis;
* :mod:`repro.analysis.significance` — an interval abstract domain per
  register that bounds each operand's significant-byte count under the
  extension-bit schemes of :mod:`repro.core.extension`;
* :mod:`repro.analysis.interproc` — the call-aware layer: argument
  intervals flow into ``jal`` targets, return-value summaries flow back
  to call sites, and sp-relative stack slots keep spilled values' proven
  widths across reloads;
* :mod:`repro.analysis.tag_table` — the exported per-PC static tag
  table the compile-time ``static-byte`` scheme reads its operand
  widths from (versioned, result-store persistable);
* :mod:`repro.analysis.lints` — liveness-based dead-write detection,
  unreachable-block detection and use-before-def warnings;
* :mod:`repro.analysis.driver` — the ``repro analyze`` summary payload
  (versioned, result-store persistable);
* :mod:`repro.analysis.crosscheck` — soundness validation of the static
  bounds against dynamically observed values (a sound bound never
  claims fewer significant bytes than a trace exhibits).
"""

from repro.analysis.cfg import CFG, BasicBlock, CFGError, build_cfg
from repro.analysis.crosscheck import crosscheck_records, crosscheck_workload
from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.driver import (
    ANALYSIS_VERSION,
    analyze_program,
    analyze_workload,
    unwrap_analysis_payload,
    wrap_analysis_payload,
)
from repro.analysis.interproc import (
    InterprocBailout,
    interprocedural_bounds,
    interprocedural_significance,
)
from repro.analysis.lints import Lint, lint_program, liveness, unreachable_blocks
from repro.analysis.significance import (
    SignificanceAnalysis,
    operand_bounds,
    significance_bounds,
)
from repro.analysis.tag_table import (
    TagTable,
    build_tag_table,
    static_scheme_totals,
    tag_table_stats,
    unwrap_tag_payload,
    wrap_tag_payload,
)

__all__ = [
    "ANALYSIS_VERSION",
    "BasicBlock",
    "CFG",
    "CFGError",
    "DataflowAnalysis",
    "InterprocBailout",
    "Lint",
    "SignificanceAnalysis",
    "TagTable",
    "analyze_program",
    "analyze_workload",
    "build_cfg",
    "build_tag_table",
    "crosscheck_records",
    "crosscheck_workload",
    "interprocedural_bounds",
    "interprocedural_significance",
    "lint_program",
    "liveness",
    "operand_bounds",
    "significance_bounds",
    "solve",
    "static_scheme_totals",
    "tag_table_stats",
    "unreachable_blocks",
    "unwrap_analysis_payload",
    "unwrap_tag_payload",
    "wrap_analysis_payload",
    "wrap_tag_payload",
]
