"""Per-PC static significance tags — the compile-time scheme's payload.

A :class:`TagTable` maps each instruction address to the operand byte
widths the static analysis proved: one bound per source operand
(aligned with ``Instruction.source_registers()`` and therefore with
``TraceRecord.read_values``) plus one for the computed value.  The
``static-byte`` scheme (:class:`repro.core.compress.StaticByteScheme`)
reads its storage/datapath widths from this table instead of per-value
extension bits; anywhere the analysis is TOP the table says 4 bytes and
the value rides at full width, so a lookup never *under*-claims as long
as the bounds are sound — which the suite-wide crosscheck enforces.

Tables persist in the result store under the same versioned envelope
discipline as analysis summaries: payloads are stamped with
:data:`~repro.analysis.driver.ANALYSIS_VERSION` and fail closed on any
skew (a stale table from an older analysis silently mis-tagging values
would corrupt every downstream figure).
"""

from repro.analysis.driver import ANALYSIS_VERSION
from repro.analysis.significance import operand_bounds

#: Fallback width (bytes) for addresses the analysis did not bound.
FULL_WIDTH_BYTES = 4


class TagTable:
    """Static per-PC operand byte widths, with full-width fallback."""

    __slots__ = ("entries",)

    def __init__(self, entries):
        #: ``{pc: (read_bytes_tuple, write_bytes_or_None)}``
        self.entries = dict(entries)

    def __len__(self):
        return len(self.entries)

    def __contains__(self, pc):
        return pc in self.entries

    def read_bytes(self, pc, index):
        """Proven width of one source operand; 4 when unanalyzed."""
        entry = self.entries.get(pc)
        if entry is None or index >= len(entry[0]):
            return FULL_WIDTH_BYTES
        return entry[0][index]

    def write_bytes(self, pc):
        """Proven width of the computed value; 4 when unanalyzed."""
        entry = self.entries.get(pc)
        if entry is None or entry[1] is None:
            return FULL_WIDTH_BYTES
        return entry[1]

    def __eq__(self, other):
        return isinstance(other, TagTable) and other.entries == self.entries

    __hash__ = None


def build_tag_table(program, initial_registers=None, interprocedural=True):
    """The static tag table of one assembled program.

    Runs :func:`~repro.analysis.significance.operand_bounds` (the
    interprocedural analysis with intraprocedural fallback, unless
    ``interprocedural=False``) and reshapes the result for per-value
    lookup.
    """
    bounds = operand_bounds(
        program,
        initial_registers=initial_registers,
        interprocedural=interprocedural,
    )
    return TagTable(
        (pc, (bound.read_bytes, bound.write_bytes))
        for pc, bound in bounds.items()
    )


def wrap_tag_payload(table):
    """The on-disk envelope of one tag table (versioned)."""
    entries = [
        [pc, list(reads), write]
        for pc, (reads, write) in sorted(table.entries.items())
    ]
    return {
        "version": ANALYSIS_VERSION,
        "kind": "tag-table",
        "data": {"entries": entries},
    }


def unwrap_tag_payload(payload):
    """Validate a stored envelope; returns the :class:`TagTable`.

    Raises ``ValueError`` on version skew or a malformed envelope — the
    caller treats both as a cache miss and recomputes.
    """
    if not isinstance(payload, dict):
        raise ValueError("tag-table payload is not an object")
    if payload.get("version") != ANALYSIS_VERSION:
        raise ValueError(
            "tag-table payload version %r != supported %d"
            % (payload.get("version"), ANALYSIS_VERSION)
        )
    if payload.get("kind") != "tag-table":
        raise ValueError("payload is not a tag table")
    data = payload.get("data")
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError("tag-table payload carries no entries")
    entries = {}
    for item in data["entries"]:
        pc, reads, write = item
        entries[int(pc)] = (tuple(int(b) for b in reads), write)
    return TagTable(entries)


def tag_table_stats(table):
    """JSON-able byte-width histograms of one tag table.

    Shapes the ``repro analyze --tags`` summary: per-width operand
    counts (string keys, like the analysis summary histograms), operand
    totals and the mean static operand width.
    """
    read_histogram = {1: 0, 2: 0, 3: 0, 4: 0}
    write_histogram = {1: 0, 2: 0, 3: 0, 4: 0}
    read_total = write_total = 0
    for reads, write in table.entries.values():
        for width in reads:
            read_histogram[width] += 1
            read_total += width
        if write is not None:
            write_histogram[write] += 1
            write_total += write
    read_operands = sum(read_histogram.values())
    write_operands = sum(write_histogram.values())
    operand_count = read_operands + write_operands
    return {
        "instructions": len(table.entries),
        "read_operands": read_operands,
        "write_operands": write_operands,
        "read_histogram": {str(k): v for k, v in read_histogram.items()},
        "write_histogram": {str(k): v for k, v in write_histogram.items()},
        "mean_operand_bytes": (
            (read_total + write_total) / operand_count
            if operand_count
            else 0.0
        ),
    }


def static_scheme_totals(table, exec_counts):
    """Aggregate ``static-byte`` stored bits over per-PC execution counts.

    ``exec_counts`` is an iterable of ``(pc, count)`` pairs (the
    ``pc_exec`` walk payload).  Returns ``{"bits", "values", "missing"}``
    shaped like a ``scheme_bits`` walk entry: ``bits`` is the total
    storage the static scheme needs for every operand of every executed
    instruction (byte widths × 8, zero tag bits), ``values`` the operand
    count.  Executed addresses absent from the table (``missing``) are
    charged the conservative full-width three-operand worst case — the
    crosscheck separately guarantees this never actually happens.
    """
    bits = 0
    values = 0
    missing = 0
    for pc, count in exec_counts:
        entry = table.entries.get(pc)
        if entry is None:
            missing += count
            bits += count * 3 * 32
            values += count * 3
            continue
        reads, write = entry
        operand_bytes = sum(reads)
        operand_count = len(reads)
        if write is not None:
            operand_bytes += write
            operand_count += 1
        bits += count * operand_bytes * 8
        values += count * operand_count
    return {"bits": bits, "values": values, "missing": missing}
