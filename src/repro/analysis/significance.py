"""Static significance bounds via interval abstract interpretation.

Each register is abstracted by a *signed 32-bit interval* ``(lo, hi)``;
an instruction's operand significance is then bounded by the widest
sign-extended byte count any value in the interval can need.  The
transfer functions mirror :class:`~repro.sim.interpreter.Interpreter`
handler-for-handler, so the static bound is sound with respect to the
dynamic machine: for every value the interpreter ever reads or writes
at an instruction, ``scheme.significant_bytes(value)`` under the
byte-granularity schemes of :mod:`repro.core.extension` is at most the
static bound (``byte2`` counts exactly the minimal sign-extended byte
width; ``byte3`` can only store fewer bytes than ``byte2``).

Key design points:

* the interval endpoints live in signed space (``-2**31 .. 2**31-1``)
  because significance is a function of sign-extension, which is a
  signed notion; values from the machine (u32) are converted on entry;
* any operation that may wrap modulo ``2**32`` collapses to TOP — the
  set of post-wrap values is disjoint, and TOP costs only precision;
* loops make the domain infinite-height, so :meth:`SignificanceAnalysis.widen`
  jumps growing endpoints outward to the nearest *byte-boundary
  threshold* (±2**7, ±2**15, ±2**23, ...).  That both forces
  convergence (each endpoint can move at most ~10 times) and preserves
  exactly the precision significance cares about: a loop counter that
  stays under 128 keeps its one-byte bound;
* conditional branches refine the tested register along each outgoing
  edge (``bltz`` proves its source negative on the taken edge, etc.);
  an empty refinement marks the edge infeasible;
* memory is not modeled: ``lw`` conservatively yields TOP.  This is
  the documented precision/soundness trade — the bound is weak for
  word reloads but never wrong.

The machine boots with every register 0 and ``$sp`` at
:data:`~repro.asm.program.STACK_TOP` (see :class:`~repro.sim.machine.Machine`),
which gives the entry state for free.
"""

from repro.analysis.dataflow import DataflowAnalysis, solve
from repro.analysis.cfg import build_cfg, reachable_blocks
from repro.asm.program import STACK_TOP
from repro.isa.opcodes import Funct, InstrClass, Opcode

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1
TOP = (INT_MIN, INT_MAX)

#: Abstract state slots: 32 general registers plus the multiply unit.
HI_SLOT = 32
LO_SLOT = 33
NUM_SLOTS = 34

#: Widening targets, one per byte-significance boundary.  An endpoint
#: that grows during fixpoint iteration jumps outward to the nearest
#: threshold, so the chain of widened intervals has finite height while
#: byte-count precision is preserved exactly.
WIDEN_THRESHOLDS = (
    INT_MIN, -(1 << 23), -(1 << 15), -(1 << 7), -1,
    0, 1, (1 << 7) - 1, (1 << 15) - 1, (1 << 23) - 1, INT_MAX,
)


# ------------------------------------------------------------- intervals


def to_signed(value):
    """Reinterpret a u32 machine value as signed."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def const_interval(value):
    """Singleton interval of one machine (u32) value."""
    signed = to_signed(value)
    return (signed, signed)


def join_interval(a, b):
    return (a[0] if a[0] <= b[0] else b[0], a[1] if a[1] >= b[1] else b[1])


def meet_interval(a, b):
    """Intersection; ``None`` when empty (an infeasible refinement)."""
    lo = a[0] if a[0] >= b[0] else b[0]
    hi = a[1] if a[1] <= b[1] else b[1]
    return None if lo > hi else (lo, hi)


def widen_interval(old, new):
    """Jump growing endpoints outward to the nearest byte threshold."""
    lo, hi = new
    if lo < old[0]:
        for threshold in reversed(WIDEN_THRESHOLDS):
            if threshold <= lo:
                lo = threshold
                break
    if hi > old[1]:
        for threshold in WIDEN_THRESHOLDS:
            if threshold >= hi:
                hi = threshold
                break
    return (lo, hi)


def bytes_needed(value):
    """Minimal sign-extended byte width of a signed value (byte2 count)."""
    if -0x80 <= value < 0x80:
        return 1
    if -0x8000 <= value < 0x8000:
        return 2
    if -0x800000 <= value < 0x800000:
        return 3
    return 4


def interval_bytes(interval):
    """Widest byte2 significance any value in the interval can need.

    ``bytes_needed`` is V-shaped around zero over the signed line, so
    its maximum over an interval is attained at an endpoint.
    """
    low = bytes_needed(interval[0])
    high = bytes_needed(interval[1])
    return low if low >= high else high


def _bounded(lo, hi):
    """Interval if it fits in signed 32-bit space, else TOP (may wrap)."""
    if lo < INT_MIN or hi > INT_MAX:
        return TOP
    return (lo, hi)


def _is_const(interval):
    return interval[0] == interval[1]


# ------------------------------------------------- arithmetic transfer ops


def _add(a, b):
    return _bounded(a[0] + b[0], a[1] + b[1])


def _sub(a, b):
    return _bounded(a[0] - b[1], a[1] - b[0])


def _u32_binop(a, b, op):
    """Exact constant fold of a bitwise op performed on u32 values."""
    return const_interval(op(a[0] & 0xFFFFFFFF, b[0] & 0xFFFFFFFF))


def _and(a, b):
    if _is_const(a) and _is_const(b):
        return _u32_binop(a, b, lambda x, y: x & y)
    # Masking with a non-negative value bounds the result to [0, mask]
    # regardless of the other operand's sign (the mask's top bit is 0).
    if a[0] >= 0 and b[0] >= 0:
        return (0, a[1] if a[1] <= b[1] else b[1])
    if b[0] >= 0:
        return (0, b[1])
    if a[0] >= 0:
        return (0, a[1])
    return TOP


def _or(a, b):
    if _is_const(a) and _is_const(b):
        return _u32_binop(a, b, lambda x, y: x | y)
    if a == (0, 0):
        return b
    if b == (0, 0):
        return a
    if a[0] >= 0 and b[0] >= 0:
        # x | y <= x + y and x | y >= max(x, y) for non-negative x, y.
        lo = a[0] if a[0] >= b[0] else b[0]
        return _bounded(lo, a[1] + b[1])
    if a[1] < 0 and b[0] >= 0:
        # OR keeps the negative operand's sign bit; setting bits moves a
        # two's-complement value toward -1.
        return (a[0], -1)
    if b[1] < 0 and a[0] >= 0:
        return (b[0], -1)
    return TOP


def _xor(a, b):
    if _is_const(a) and _is_const(b):
        return _u32_binop(a, b, lambda x, y: x ^ y)
    # XOR with a value in [0, m] flips only bits below bit 31, changing
    # the result by at most ±m and never the sign beyond that window.
    if b[0] >= 0:
        return _bounded(a[0] - b[1], a[1] + b[1])
    if a[0] >= 0:
        return _bounded(b[0] - a[1], b[1] + a[1])
    return TOP


def _not(a):
    # ~x = -x - 1 is monotone decreasing, hence exact on intervals.
    return (-a[1] - 1, -a[0] - 1)


def _nor(a, b):
    return _not(_or(a, b))


def _slt(a, b):
    """Signed set-on-less-than with constant folding on disjoint ranges."""
    if a[1] < b[0]:
        return (1, 1)
    if a[0] >= b[1]:
        return (0, 0)
    return (0, 1)


def _sltu(a, b):
    # Fold only where the unsigned and signed orders agree.
    if a[0] >= 0 and b[0] >= 0:
        return _slt(a, b)
    return (0, 1)


def _shift_range(shift, default_max=31):
    """Shift-amount interval from the rs interval (masked to 0..31)."""
    if 0 <= shift[0] and shift[1] <= 31:
        return shift
    return (0, default_max)


def _sll(a, shift):
    lo_s, hi_s = shift
    candidates = (
        a[0] << lo_s, a[0] << hi_s, a[1] << lo_s, a[1] << hi_s,
    )
    return _bounded(min(candidates), max(candidates))


def _srl(a, shift):
    lo_s, hi_s = shift
    if a[0] >= 0:
        return (a[0] >> hi_s, a[1] >> lo_s)
    if lo_s >= 1:
        # A logical shift of at least one clears the sign bit.
        return (0, 0xFFFFFFFF >> lo_s)
    return TOP


def _sra(a, shift):
    lo_s, hi_s = shift
    candidates = (
        a[0] >> lo_s, a[0] >> hi_s, a[1] >> lo_s, a[1] >> hi_s,
    )
    return (min(candidates), max(candidates))


def _mult(a, b, unsigned):
    """Returns (hi interval, lo interval) of a 32x32 multiply."""
    if unsigned:
        if a[0] < 0 or b[0] < 0:
            return TOP, TOP
        product_max = a[1] * b[1]
        if product_max > INT_MAX:
            return TOP, TOP
        return (0, 0), (a[0] * b[0], product_max)
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    p_min, p_max = min(products), max(products)
    if p_min < INT_MIN or p_max > INT_MAX:
        return TOP, TOP
    # lo holds the (fitting) product; hi is its sign word: 0 or -1.
    return (-1 if p_min < 0 else 0, 0 if p_max >= 0 else -1), (p_min, p_max)


def _div(a, b, unsigned):
    """Returns (hi = remainder interval, lo = quotient interval)."""
    if unsigned:
        if a[0] < 0 or b[0] < 0:
            return TOP, TOP
        rem_max = b[1] - 1 if b[1] >= 1 else 0
        if a[1] < rem_max:
            rem_max = a[1]
        return (0, rem_max), (0, a[1])
    if a[0] == INT_MIN:
        # INT_MIN / -1 wraps the quotient; give up on both halves.
        return TOP, TOP
    mag_a = max(-a[0], a[1])
    mag_b = max(-b[0], b[1], 1)
    rem_mag = mag_b - 1 if mag_b - 1 <= mag_a else mag_a
    return (-rem_mag, rem_mag), (-mag_a, mag_a)


#: Result intervals of the fixed-width load instructions.
_LOAD_INTERVALS = {
    Opcode.LB: (-0x80, 0x7F),
    Opcode.LBU: (0, 0xFF),
    Opcode.LH: (-0x8000, 0x7FFF),
    Opcode.LHU: (0, 0xFFFF),
    Opcode.LW: TOP,
}


# ------------------------------------------------------ instruction step


def transfer_instruction(instr, pc, state):
    """Abstractly execute one instruction.

    ``state`` is a mutable list of :data:`NUM_SLOTS` intervals, updated
    in place.  Returns the interval of the value the instruction
    computes (mirroring ``TraceRecord.write_value`` — present even when
    the destination is ``$zero`` and the write is discarded), or
    ``None`` for instructions that produce no register value.
    """

    def write(reg, interval):
        if reg != 0:
            state[reg] = interval

    opcode = instr.opcode
    if opcode == Opcode.SPECIAL:
        funct = instr.funct
        rs, rt = state[instr.rs], state[instr.rt]
        if funct in (Funct.ADD, Funct.ADDU):
            value = _add(rs, rt)
        elif funct in (Funct.SUB, Funct.SUBU):
            value = _sub(rs, rt)
        elif funct == Funct.AND:
            value = _and(rs, rt)
        elif funct == Funct.OR:
            value = _or(rs, rt)
        elif funct == Funct.XOR:
            value = _xor(rs, rt)
        elif funct == Funct.NOR:
            value = _nor(rs, rt)
        elif funct == Funct.SLT:
            value = _slt(rs, rt)
        elif funct == Funct.SLTU:
            value = _sltu(rs, rt)
        elif funct == Funct.SLL:
            value = _sll(rt, (instr.shamt, instr.shamt))
        elif funct == Funct.SRL:
            value = _srl(rt, (instr.shamt, instr.shamt))
        elif funct == Funct.SRA:
            value = _sra(rt, (instr.shamt, instr.shamt))
        elif funct == Funct.SLLV:
            value = _sll(rt, _shift_range(rs))
        elif funct == Funct.SRLV:
            value = _srl(rt, _shift_range(rs))
        elif funct == Funct.SRAV:
            value = _sra(rt, _shift_range(rs))
        elif funct in (Funct.MULT, Funct.MULTU):
            hi, lo = _mult(rs, rt, unsigned=funct == Funct.MULTU)
            state[HI_SLOT] = hi
            state[LO_SLOT] = lo
            return None
        elif funct in (Funct.DIV, Funct.DIVU):
            hi, lo = _div(rs, rt, unsigned=funct == Funct.DIVU)
            state[HI_SLOT] = hi
            state[LO_SLOT] = lo
            return None
        elif funct == Funct.MFHI:
            value = state[HI_SLOT]
        elif funct == Funct.MFLO:
            value = state[LO_SLOT]
        elif funct == Funct.MTHI:
            state[HI_SLOT] = rs
            return None
        elif funct == Funct.MTLO:
            state[LO_SLOT] = rs
            return None
        elif funct == Funct.JALR:
            value = const_interval(pc + 4)
        else:
            # jr, syscall, break: no register value.
            return None
        write(instr.rd, value)
        return value

    if opcode in (Opcode.ADDI, Opcode.ADDIU):
        value = _add(state[instr.rs], (instr.imm, instr.imm))
    elif opcode == Opcode.SLTI:
        value = _slt(state[instr.rs], (instr.imm, instr.imm))
    elif opcode == Opcode.SLTIU:
        rs = state[instr.rs]
        if rs[0] >= 0 and instr.imm >= 0:
            value = _slt(rs, (instr.imm, instr.imm))
        else:
            value = (0, 1)
    elif opcode == Opcode.ANDI:
        value = _and(state[instr.rs], (instr.imm_u, instr.imm_u))
    elif opcode == Opcode.ORI:
        value = _or(state[instr.rs], (instr.imm_u, instr.imm_u))
    elif opcode == Opcode.XORI:
        value = _xor(state[instr.rs], (instr.imm_u, instr.imm_u))
    elif opcode == Opcode.LUI:
        value = const_interval(instr.imm_u << 16)
    elif opcode in _LOAD_INTERVALS:
        value = _LOAD_INTERVALS[opcode]
    elif opcode == Opcode.JAL:
        state[31] = const_interval(pc + 4)
        return state[31]
    else:
        # Stores, branches, j: address arithmetic only, no register value.
        return None

    write(instr.rt, value)
    return value


# ------------------------------------------------------------- analysis


class SignificanceAnalysis(DataflowAnalysis):
    """Forward interval propagation with branch-edge refinement."""

    direction = "forward"

    def __init__(self, cfg, initial_registers=None):
        self.cfg = cfg
        self._initial = initial_registers

    def boundary(self, cfg):
        if self._initial is not None:
            state = [TOP] * NUM_SLOTS
            for reg, value in self._initial.items():
                state[reg] = const_interval(value)
            state[0] = (0, 0)
            return tuple(state)
        # Machine boot state: all registers zero, $sp at STACK_TOP.
        state = [(0, 0)] * NUM_SLOTS
        state[29] = const_interval(STACK_TOP)
        return tuple(state)

    def join(self, a, b):
        return tuple(
            join_interval(iva, ivb) for iva, ivb in zip(a, b)
        )

    def widen(self, old, new):
        return tuple(
            widen_interval(iva, ivb) for iva, ivb in zip(old, new)
        )

    def transfer(self, block, state):
        regs = list(state)
        pc = block.start
        for instr in block.instructions:
            transfer_instruction(instr, pc, regs)
            pc += 4
        return tuple(regs)

    # --------------------------------------------- branch-edge refinement

    def edge_state(self, block, successor, state):
        term = block.terminator
        if term.iclass is not InstrClass.BRANCH:
            return state
        last_pc = block.end - 4
        taken = self.cfg.block_of(term.branch_target(last_pc)).index
        fallthrough = self.cfg.block_of(last_pc + 4).index
        if taken == fallthrough:
            return state
        on_taken = successor == taken
        return _refine_branch(term, state, on_taken)


def _refine_with(state, reg, constraint):
    """Meet one register against a constraint interval."""
    refined = meet_interval(state[reg], constraint)
    if refined is None:
        return None
    if refined == state[reg]:
        return state
    out = list(state)
    out[reg] = refined
    return tuple(out)


def _exclude_constant(interval, value):
    """Drop a known-unequal constant when it sits on an endpoint."""
    lo, hi = interval
    if lo == hi == value:
        return None
    if lo == value:
        return (lo + 1, hi)
    if hi == value:
        return (lo, hi - 1)
    return interval


def _refine_branch(instr, state, on_taken):
    """Narrow the tested register(s) along one branch edge.

    Returns the refined state, or ``None`` when the refinement is empty
    (the edge cannot be taken from this state).
    """
    opcode = instr.opcode
    if opcode == Opcode.BLEZ:
        constraint = (INT_MIN, 0) if on_taken else (1, INT_MAX)
        return _refine_with(state, instr.rs, constraint)
    if opcode == Opcode.BGTZ:
        constraint = (1, INT_MAX) if on_taken else (INT_MIN, 0)
        return _refine_with(state, instr.rs, constraint)
    if opcode == Opcode.REGIMM:
        negative = instr.rt == 0  # bltz; otherwise bgez
        if negative:
            constraint = (INT_MIN, -1) if on_taken else (0, INT_MAX)
        else:
            constraint = (0, INT_MAX) if on_taken else (INT_MIN, -1)
        return _refine_with(state, instr.rs, constraint)
    if opcode in (Opcode.BEQ, Opcode.BNE):
        equal_edge = on_taken if opcode == Opcode.BEQ else not on_taken
        rs_iv, rt_iv = state[instr.rs], state[instr.rt]
        if equal_edge:
            both = meet_interval(rs_iv, rt_iv)
            if both is None:
                return None
            out = list(state)
            if instr.rs != 0:
                out[instr.rs] = both
            if instr.rt != 0:
                out[instr.rt] = both
            return tuple(out)
        out = list(state)
        if _is_const(rt_iv) and instr.rs != 0:
            refined = _exclude_constant(rs_iv, rt_iv[0])
            if refined is None:
                return None
            out[instr.rs] = refined
        if _is_const(rs_iv) and instr.rt != 0:
            refined = _exclude_constant(rt_iv, rs_iv[0])
            if refined is None:
                return None
            out[instr.rt] = refined
        return tuple(out)
    return state


# --------------------------------------------------------------- results


class OperandBounds:
    """Static significance bounds of one instruction.

    ``read_bytes`` aligns index-for-index with
    ``Instruction.source_registers()`` (and therefore with
    ``TraceRecord.read_values``); ``write_bytes`` bounds the computed
    value (``TraceRecord.write_value``), ``None`` when the instruction
    produces no register value.
    """

    __slots__ = ("pc", "read_bytes", "write_bytes")

    def __init__(self, pc, read_bytes, write_bytes):
        self.pc = pc
        self.read_bytes = read_bytes
        self.write_bytes = write_bytes

    def __repr__(self):
        return "OperandBounds(0x%08x, reads=%r, write=%r)" % (
            self.pc, self.read_bytes, self.write_bytes,
        )


def significance_bounds(cfg, initial_registers=None):
    """Per-instruction static significance bounds for ``cfg``.

    Returns ``{pc: OperandBounds}`` covering every instruction in a
    block the analysis can reach (a superset of anything a dynamic run
    reaches).  Bounds are in bytes, 1..4, sound for the byte-granularity
    schemes (``byte2``/``byte3``).
    """
    analysis = SignificanceAnalysis(cfg, initial_registers=initial_registers)
    states = solve(cfg, analysis)
    bounds = {}
    for block in cfg.blocks:
        in_state = states[block.index][0]
        if in_state is None:
            continue
        regs = list(in_state)
        pc = block.start
        for instr in block.instructions:
            reads = tuple(
                interval_bytes(regs[reg]) for reg in instr.source_registers()
            )
            value = transfer_instruction(instr, pc, regs)
            write = None if value is None else interval_bytes(value)
            bounds[pc] = OperandBounds(pc, reads, write)
            pc += 4
    return bounds


def operand_bounds(program, initial_registers=None, interprocedural=True):
    """Per-instruction static significance bounds for ``program``.

    By default the call-aware summary analysis of
    :mod:`repro.analysis.interproc` runs first (it bounds exactly the
    same reachable-instruction set, only tighter); programs it cannot
    model — indirect ``jalr`` calls, returns through registers other
    than ``$ra``, unproven return addresses — fall back to the
    intraprocedural fixpoint below.  Pass ``interprocedural=False`` to
    force the intraprocedural result (used for slack comparisons).
    """
    cfg = build_cfg(program)
    if interprocedural:
        # Imported lazily: interproc builds on this module's transfer
        # functions, so a top-level import would be circular.
        from repro.analysis.interproc import (
            InterprocBailout,
            interprocedural_significance,
        )

        try:
            return interprocedural_significance(
                cfg, initial_registers=initial_registers
            )
        except InterprocBailout:
            pass
    return significance_bounds(cfg, initial_registers=initial_registers)


def reachable_instruction_count(cfg):
    """Instructions inside entry-reachable blocks (for summaries)."""
    reachable = reachable_blocks(cfg)
    return sum(
        len(cfg.blocks[index].instructions) for index in reachable
    )
