"""Static-vs-dynamic significance soundness validation.

A *sound* static bound must never claim fewer significant bytes than a
dynamic execution exhibits.  :func:`crosscheck_records` replays a trace
against the static :func:`~repro.analysis.significance.significance_bounds`
and checks, value by value:

* every executed instruction lies inside a statically-reachable block
  (our CFG over-approximates control flow, so "executed but analyzed
  unreachable" would be a CFG soundness bug);
* every dynamically observed operand value — ``TraceRecord.read_values``
  (aligned with ``Instruction.source_registers()``) and
  ``TraceRecord.write_value`` — needs at most the statically bounded
  byte count under each byte-granularity scheme;
* the aggregate: total stored bits under the static bound is at least
  the total the dynamic :class:`~repro.study.walkers.SchemeBitsWalker`
  accumulates for the same scheme (the walker sums
  ``scheme.stored_bits`` over exactly the same reads-then-write value
  sequence, so ``dynamic_bits`` here is bit-identical to its payload).

For coarser uniform block schemes the per-byte bound rounds up to the
block width (:func:`scheme_bound_bytes`): a 3-byte-wide value occupies
both halfwords of a ``block16`` word, and a value whose minimal
sign-extended width fits ``w`` bytes can never need more than
``ceil(w / block_bytes)`` blocks.
"""

from repro.analysis.significance import operand_bounds
from repro.core.compress import get_scheme

#: Every registered scheme is validated by default (enforced by
#: tools/check_invariants.py): the byte-granularity pair whose
#: significant-byte counts the interval domain bounds directly, the
#: halfword scheme (a byte-chain sign extension implies the halfword
#: one, so rounding the bound up to blocks stays sound), and the
#: compile-time ``static-byte`` scheme, for which this check *is* the
#: correctness gate — its stored width is exactly the static bound, so
#: an under-claim here means executed values would be truncated.
DEFAULT_SCHEMES = ("byte2", "byte3", "block16", "static-byte")

#: Cap on individual violations carried in a report (totals are exact).
MAX_VIOLATIONS = 20


def scheme_bound_bytes(bound_bytes, scheme):
    """Static byte bound adapted to a scheme's block granularity.

    ``scheme`` may be a scheme object or a registered name; an unknown
    name raises :class:`~repro.core.compress.UnknownSchemeError` (a
    ``ValueError``) rather than a bare ``KeyError``.
    """
    scheme = get_scheme(scheme)
    block_bytes = scheme.block_bits // 8
    if block_bytes <= 1:
        return bound_bytes
    blocks = -(-bound_bytes // block_bytes)  # ceil division
    return blocks * block_bytes


def crosscheck_records(bounds, records, scheme_names=DEFAULT_SCHEMES):
    """Validate static ``bounds`` against executed ``records``.

    Returns a JSON-able report; ``report["ok"]`` is True iff no
    violation of any kind occurred.  Individual violations beyond
    :data:`MAX_VIOLATIONS` are counted but not listed.
    """
    schemes = [get_scheme(name) for name in scheme_names]
    static_bits = [0] * len(schemes)
    dynamic_bits = [0] * len(schemes)
    violations = []
    violation_count = 0
    values_checked = 0
    static_histograms = [
        {1: 0, 2: 0, 3: 0, 4: 0} for _ in schemes
    ]
    dynamic_histograms = [
        {1: 0, 2: 0, 3: 0, 4: 0} for _ in schemes
    ]
    # Operand values repeat heavily (the paper's own premise); memoize
    # the per-scheme dynamic byte counts per distinct value.
    dynamic_memo = {}

    def record_violation(kind, pc, **detail):
        nonlocal violation_count
        violation_count += 1
        if len(violations) < MAX_VIOLATIONS:
            entry = {"kind": kind, "pc": "0x%08x" % pc}
            entry.update(detail)
            violations.append(entry)

    def check_value(pc, operand, value, bound_bytes):
        nonlocal values_checked
        values_checked += 1
        entry = dynamic_memo.get(value)
        if entry is None:
            entry = tuple(
                scheme.significant_bytes(value) for scheme in schemes
            )
            dynamic_memo[value] = entry
        for index, scheme in enumerate(schemes):
            dynamic = entry[index]
            static = scheme_bound_bytes(bound_bytes, scheme)
            dynamic_bits[index] += dynamic * 8 + scheme.num_ext_bits
            static_bits[index] += static * 8 + scheme.num_ext_bits
            static_histograms[index][static] += 1
            dynamic_histograms[index][dynamic] += 1
            if dynamic > static:
                record_violation(
                    "bound", pc,
                    operand=operand,
                    scheme=scheme.name,
                    value="0x%08x" % value,
                    dynamic_bytes=dynamic,
                    static_bytes=static,
                )

    for record in records:
        bound = bounds.get(record.pc)
        if bound is None:
            record_violation("unanalyzed", record.pc)
            continue
        reads = record.read_values
        if len(reads) != len(bound.read_bytes):
            record_violation(
                "operand-shape", record.pc,
                dynamic_reads=len(reads),
                static_reads=len(bound.read_bytes),
            )
            continue
        for index, value in enumerate(reads):
            check_value(
                record.pc, "read%d" % index, value, bound.read_bytes[index]
            )
        if record.write_value is not None:
            if bound.write_bytes is None:
                record_violation("missing-write-bound", record.pc)
            else:
                check_value(
                    record.pc, "write", record.write_value, bound.write_bytes
                )

    return {
        "schemes": list(scheme_names),
        "records": len(records),
        "values_checked": values_checked,
        "violations": violation_count,
        "violation_samples": violations,
        "static_bits": list(static_bits),
        "dynamic_bits": list(dynamic_bits),
        "slack": [
            (static - dynamic) / dynamic if dynamic else 0.0
            for static, dynamic in zip(static_bits, dynamic_bits)
        ],
        "histograms": {
            scheme_name: {
                "static": {str(k): v for k, v in static_hist.items()},
                "dynamic": {str(k): v for k, v in dynamic_hist.items()},
            }
            for scheme_name, static_hist, dynamic_hist in zip(
                scheme_names, static_histograms, dynamic_histograms
            )
        },
        "ok": violation_count == 0,
    }


def crosscheck_workload(
    workload, scale=1, scheme_names=DEFAULT_SCHEMES, trace_cache=None
):
    """Cross-check one workload: static bounds vs its executed trace."""
    bounds = operand_bounds(workload.program(scale))
    records = workload.trace(scale, trace_cache=trace_cache)
    report = crosscheck_records(bounds, records, scheme_names=scheme_names)
    report["workload"] = workload.name
    report["scale"] = scale
    return report
