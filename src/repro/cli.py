"""Command-line interface: ``repro <experiment> [options]``.

Examples::

    repro list                      # show available experiments
    repro table5                    # reproduce Table 5 on the full suite
    repro fig4 --scale 2            # larger inputs
    repro table1 --workloads rawcaudio,cjpeg
    repro all                       # every table and figure in sequence
    repro all --jobs 4              # same output, experiments in parallel
    repro all --format json         # machine-readable report
"""

import argparse
import sys

from repro.study.experiments import EXPERIMENTS
from repro.study.session import ExperimentSession
from repro.workloads import all_workloads


def positive_int(text):
    """argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be a positive integer, got %s" % text
        )
    return value


def build_parser():
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Very Low Power Pipelines "
            "using Significance Compression' (MICRO-33, 2000)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=positive_int,
        default=1,
        help="workload input scale factor (default 1)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: full Mediabench-like suite)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes for independent experiments (default 1: serial)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    return parser


def _resolve_workloads(spec):
    """Parse a ``--workloads`` value; KeyError carries the unknown names."""
    names = [name.strip() for name in spec.split(",") if name.strip()]
    registry = all_workloads()
    unknown = sorted(set(names) - set(registry))
    if unknown:
        raise KeyError(", ".join(unknown))
    return [registry[name] for name in names]


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print("%-22s %s" % (name, EXPERIMENTS[name].description))
        return 0
    workloads = None
    if args.workloads is not None:
        try:
            workloads = _resolve_workloads(args.workloads)
        except KeyError as error:
            print("unknown workload(s): %s" % error.args[0], file=sys.stderr)
            print(
                "available: %s" % ", ".join(sorted(all_workloads())),
                file=sys.stderr,
            )
            return 2
        if not workloads:
            print("--workloads names no workloads", file=sys.stderr)
            print(
                "available: %s" % ", ".join(sorted(all_workloads())),
                file=sys.stderr,
            )
            return 2
    session = ExperimentSession(workloads=workloads, scale=args.scale)
    names = None if args.experiment == "all" else [args.experiment]
    try:
        if args.experiment == "all" and args.format == "text" and args.jobs == 1:
            # Stream each report as it completes.
            for result in session.run_iter(names):
                print(session.format_result_block(result))
            return 0
        results = session.run(names, jobs=args.jobs)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.format == "json":
        print(session.report_json(results))
    elif args.experiment == "all":
        print(session.report_text(results))
    else:
        print(results[0].text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
