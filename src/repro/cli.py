"""Command-line interface: ``repro <experiment> [options]``.

Examples::

    repro list                      # show available experiments
    repro table5                    # reproduce Table 5 on the full suite
    repro fig4 --scale 2            # larger inputs
    repro table1 --workloads rawcaudio,cjpeg
    repro all                       # every table and figure in sequence
"""

import argparse
import sys

from repro.study.experiments import EXPERIMENTS, run_experiment
from repro.workloads import get_workload, mediabench_suite


def build_parser():
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Very Low Power Pipelines "
            "using Significance Compression' (MICRO-33, 2000)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="workload input scale factor (default 1)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: full Mediabench-like suite)",
    )
    return parser


def main(argv=None):
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print("%-22s %s" % (name, EXPERIMENTS[name][0]))
        return 0
    workloads = None
    if args.workloads:
        workloads = [get_workload(name.strip()) for name in args.workloads.split(",")]
    if args.experiment == "all":
        names = [n for n in EXPERIMENTS if n != "fetchstats"]
        for name in names:
            print("=" * 72)
            print(run_experiment(name, workloads=workloads, scale=args.scale))
            print()
        return 0
    try:
        print(run_experiment(args.experiment, workloads=workloads, scale=args.scale))
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
