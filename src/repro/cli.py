"""Command-line interface: ``repro <experiment> [options]``.

Examples::

    repro list                      # experiments, organizations, workloads, kernels
    repro list --format json        # the same enumeration for scripts
    repro table5                    # reproduce Table 5 on the full suite
    repro fig4 --scale 2            # larger inputs
    repro table1 --workloads rawcaudio,cjpeg
    repro all                       # every table and figure in sequence
    repro all --jobs 4              # same output, experiments in parallel
    repro all --format json         # machine-readable report
    repro all --kernel reference    # same output, oracle simulation backend
    repro all --hierarchy reference # same output, oracle memory hierarchy
    repro all --cache-dir .cache    # persist traces + results across processes
    repro all --trace-out run.json  # Chrome trace-event timeline (Perfetto)
    repro all --jobs 4 --inject-faults 'worker.task:kill@0.1,seed=7'
                                    # chaos run: same output, injected crashes
    repro cache info                # trace-cache and result-store statistics
    repro cache clear               # drop every cached trace and result
    repro cache clear --results     # drop cached results, keep traces
    repro analyze rawcaudio         # static CFG/significance/lint summary
    repro analyze --format json     # the whole suite, machine-readable
    repro analyze --crosscheck      # also validate bounds against traces

The persistent cache directory (shared by the trace cache and the
result store) defaults to the ``REPRO_CACHE_DIR`` environment variable;
``--cache-dir`` overrides it.  The simulation backend defaults to the
``REPRO_KERNEL`` environment variable; ``--kernel`` overrides it.  The
memory-hierarchy backend defaults to ``REPRO_HIERARCHY``;
``--hierarchy`` overrides it.

``--trace-out FILE`` (every subcommand) records a Chrome trace-event
timeline of the run — session phases, broker batches, per-unit cache
resolution and raw compute spans — viewable in Perfetto or
``chrome://tracing``.  Cache-backed runs additionally write a manifest
(config, engine fingerprints, final metrics snapshot) under
``<cache_dir>/runs/``; ``repro cache info`` reports them.

``--inject-faults SPEC`` (every subcommand; default ``$REPRO_FAULTS``)
arms the deterministic fault-injection harness of
:mod:`repro.obs.faults` for the run — worker kills, store ``EIO``,
cache bit rot — exercising the supervision and degraded-mode machinery
documented in ``docs/ROBUSTNESS.md``.  ``--max-retries`` and
``--unit-timeout`` tune the supervised unit executor under ``--jobs``.
"""

import argparse
import json
import signal
import sys

from repro.obs import faults, runlog, tracing
from repro.pipeline.kernel import (
    ENV_KERNEL,
    default_kernel_name,
    get_kernel,
    kernel_names,
)
from repro.sim.hierarchy_model import (
    ENV_HIERARCHY,
    default_hierarchy_name,
    get_hierarchy,
    hierarchy_names,
)
from repro.study.experiments import EXPERIMENTS
from repro.study.result_store import ResultStore
from repro.study.session import ExperimentSession
from repro.study.trace_cache import ENV_CACHE_DIR, TraceCache, default_cache_dir
from repro.workloads import all_workloads


def positive_int(text):
    """argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be a positive integer, got %s" % text
        )
    return value


def nonnegative_int(text):
    """argparse type: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not an integer" % text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be a non-negative integer, got %s" % text
        )
    return value


def positive_float(text):
    """argparse type: a strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError("%r is not a number" % text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be a positive number, got %s" % text
        )
    return value


def build_parser():
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Very Low Power Pipelines "
            "using Significance Compression' (MICRO-33, 2000)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (see 'repro list'), 'all', 'list', 'cache', "
            "or 'analyze'"
        ),
    )
    parser.add_argument(
        "--scale",
        type=positive_int,
        default=1,
        help="workload input scale factor (default 1)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: full Mediabench-like suite)",
    )
    parser.add_argument(
        "--jobs",
        type=positive_int,
        default=1,
        help="worker processes for independent experiments (default 1: serial)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        help=(
            "pipeline simulation backend (default: $%s when set, else "
            "'tabular'); see 'repro list' for registered kernels" % ENV_KERNEL
        ),
    )
    parser.add_argument(
        "--hierarchy",
        default=None,
        help=(
            "memory-hierarchy backend (default: $%s when set, else 'memo'); "
            "see 'repro list' for registered hierarchies" % ENV_HIERARCHY
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=nonnegative_int,
        default=None,
        help=(
            "worker failures tolerated per unit under --jobs before the "
            "guaranteed in-process fallback (default 2)"
        ),
    )
    parser.add_argument(
        "--unit-timeout",
        type=positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline per unit attempt under --jobs; an overrunning "
            "worker is killed and its unit retried (default: no deadline)"
        ),
    )
    _add_cache_dir_option(parser)
    _add_trace_out_option(parser)
    _add_fault_option(parser)
    return parser


def _add_fault_option(parser):
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministically inject faults, e.g. 'store.write:eio@0.2,"
            "worker.task:kill@0.1,seed=7' (default: $%s when set; "
            "see docs/ROBUSTNESS.md for the point catalog)"
            % faults.ENV_FAULTS
        ),
    )


def _add_cache_dir_option(parser):
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persistent trace-cache directory (default: $%s when set); "
            "warm runs skip simulation entirely" % ENV_CACHE_DIR
        ),
    )


def _add_trace_out_option(parser):
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write a Chrome trace-event JSON timeline of this run to FILE "
            "(open in Perfetto or chrome://tracing)"
        ),
    )


def build_cache_parser():
    """Parser for the ``repro cache`` maintenance subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or clear the persistent trace cache.",
    )
    parser.add_argument(
        "action",
        choices=("info", "clear"),
        help="'info' reports sizes and compression; 'clear' deletes entries",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format for 'info' (default text)",
    )
    parser.add_argument(
        "--traces",
        action="store_true",
        help="for 'clear': delete cached traces (default: traces and results)",
    )
    parser.add_argument(
        "--results",
        action="store_true",
        help="for 'clear': delete cached results (default: traces and results)",
    )
    _add_cache_dir_option(parser)
    _add_trace_out_option(parser)
    _add_fault_option(parser)
    return parser


def build_analyze_parser():
    """Parser for the ``repro analyze`` static-analysis subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Static significance analysis over assembled workload programs: "
            "CFG shape, per-operand byte-width bounds, and dataflow lints "
            "(dead writes, unreachable blocks, use-before-def)."
        ),
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        help="workload names (default: the full Mediabench-like suite)",
    )
    parser.add_argument(
        "--scale",
        type=positive_int,
        default=1,
        help="workload input scale factor (default 1)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--crosscheck",
        action="store_true",
        help=(
            "validate the static bounds against each workload's dynamic "
            "trace (simulates, or loads from the trace cache); exits "
            "non-zero on any soundness violation"
        ),
    )
    parser.add_argument(
        "--tags",
        action="store_true",
        help=(
            "include the static tag table summary (per-PC operand byte "
            "widths the 'static-byte' scheme reads at run time)"
        ),
    )
    _add_cache_dir_option(parser)
    _add_trace_out_option(parser)
    _add_fault_option(parser)
    return parser


def _sigterm_to_exit(signum, frame):
    """Convert SIGTERM into SystemExit so ``finally`` blocks run.

    An in-flight store write then unlinks its temp file (both stores
    write inside try/finally), and the process still exits with the
    conventional ``128 + SIGTERM`` status.
    """
    raise SystemExit(128 + signum)


def _arm_run(args):
    """Arm fault injection and graceful SIGTERM for one CLI run.

    Returns a ``disarm()`` callable restoring both, or ``None`` when
    the ``--inject-faults`` / ``$REPRO_FAULTS`` spec does not parse
    (the error was printed; callers exit 2).  Installing the injector
    here — never ambiently at import time — keeps library consumers
    and the test suite fault-free unless they opt in.
    """
    spec = (
        args.inject_faults if args.inject_faults is not None
        else faults.default_spec()
    )
    try:
        injector = faults.install_spec(spec) if spec is not None else None
    except faults.FaultSpecError as error:
        print("repro: invalid --inject-faults spec: %s" % error,
              file=sys.stderr)
        return None
    installed_handler = False
    try:
        if signal.getsignal(signal.SIGTERM) == signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm_to_exit)
            installed_handler = True
    except ValueError:  # not the main thread: keep the default behaviour
        pass

    def disarm():
        if injector is not None:
            faults.install(None)
        if installed_handler:
            signal.signal(signal.SIGTERM, signal.SIG_DFL)

    return disarm


def _install_tracer(args):
    """Install a fresh tracer when ``--trace-out`` was given, else None."""
    if args.trace_out is None:
        return None
    return tracing.start_trace()


def _finish_tracer(tracer, args):
    """Uninstall ``tracer`` and export it to the ``--trace-out`` file."""
    if tracer is None:
        return
    tracing.set_tracer(None)
    tracer.export(args.trace_out)


def _write_runlog(cache_dir, command, args, registry):
    """Persist a run manifest when a cache directory is configured."""
    if cache_dir is None:
        return
    runlog.write_runlog(
        cache_dir,
        command=command,
        config=dict(sorted(vars(args).items())),
        registry=registry,
        tracer=tracing.current_tracer(),
    )


def _analyze_main(argv):
    """Run ``repro analyze [workloads...]``."""
    args = build_analyze_parser().parse_args(argv)
    disarm = _arm_run(args)
    if disarm is None:
        return 2
    tracer = _install_tracer(args)
    try:
        return _analyze_run(args)
    finally:
        _finish_tracer(tracer, args)
        disarm()


def _analyze_run(args):
    from repro.analysis import crosscheck_records
    from repro.analysis.significance import operand_bounds
    from repro.study.scheduler import ResultBroker
    from repro.study.session import TraceStore
    from repro.workloads import mediabench_suite

    if args.workloads:
        try:
            workloads = _resolve_workloads(",".join(args.workloads))
        except KeyError as error:
            print("unknown workload(s): %s" % error.args[0], file=sys.stderr)
            print(
                "available: %s" % ", ".join(sorted(all_workloads())),
                file=sys.stderr,
            )
            return 2
    else:
        workloads = mediabench_suite()

    cache_dir = _resolve_cache_dir(args)
    cache = TraceCache(cache_dir) if cache_dir is not None else None
    store = ResultStore(cache_dir) if cache_dir is not None else None
    traces = TraceStore(cache=cache)
    broker = ResultBroker(traces, store)
    traces.results = broker
    faults.bind_registry(broker.registry)

    reports = []
    violations = 0
    for workload in workloads:
        summary = broker.analysis_summary(workload, scale=args.scale)
        if args.crosscheck or args.tags:
            summary = dict(summary)
        if args.crosscheck:
            bounds = operand_bounds(workload.program(args.scale))
            records = traces.trace(workload, scale=args.scale)
            check = crosscheck_records(bounds, records)
            summary["crosscheck"] = check
            # Per-workload slack summary: how much static headroom each
            # scheme leaves over the executed values, with the
            # static-vs-dynamic bound histograms behind the number.
            summary["slack_summary"] = {
                name: {
                    "slack_percent": round(100.0 * slack, 2),
                    "static_histogram": check["histograms"][name]["static"],
                    "dynamic_histogram": check["histograms"][name]["dynamic"],
                }
                for name, slack in zip(check["schemes"], check["slack"])
            }
            violations += check["violations"]
        if args.tags:
            from repro.analysis.tag_table import tag_table_stats

            table = broker.tag_table(workload, scale=args.scale)
            summary["tag_table"] = tag_table_stats(table)
        reports.append(summary)

    _write_runlog(
        cache_dir, ["analyze"] + list(args.workloads), args, broker.registry
    )
    if args.format == "json":
        print(json.dumps(reports, indent=2, sort_keys=True))
    else:
        for summary in reports:
            print(_format_analysis_text(summary))
    return 1 if violations else 0


def _format_analysis_text(summary):
    """Human-readable block for one workload's analysis summary."""
    cfg = summary["cfg"]
    sig = summary["significance"]
    lints = summary["lints"]
    lines = [
        "%s @ scale %d" % (summary["workload"], summary["scale"]),
        "  cfg: %d blocks, %d edges, %d instructions (%d reachable)"
        % (
            cfg["blocks"],
            cfg["edges"],
            cfg["instructions"],
            cfg["reachable_instructions"],
        ),
        "  significance: mean %.2f bytes/operand "
        "(reads %.2f over %d, writes %.2f over %d)"
        % (
            sig["mean_operand_bytes"],
            sig["mean_read_bytes"],
            sig["read_operands"],
            sig["mean_write_bytes"],
            sig["write_operands"],
        ),
        "  read bound histogram: %s"
        % " ".join(
            "%sB=%s" % (k, sig["read_histogram"][k]) for k in ("1", "2", "3", "4")
        ),
    ]
    if lints["total"]:
        lines.append(
            "  lints: %s"
            % ", ".join(
                "%s=%d" % (kind, count)
                for kind, count in sorted(lints["by_kind"].items())
            )
        )
        for finding in lints["findings"]:
            lines.append(
                "    %s %s %s: %s"
                % (
                    finding["severity"],
                    finding["kind"],
                    finding["pc"],
                    finding["message"],
                )
            )
    else:
        lines.append("  lints: clean")
    tags = summary.get("tag_table")
    if tags is not None:
        lines.append(
            "  tag table: %d instructions, %d read + %d write operands, "
            "mean %.2f bytes/operand"
            % (
                tags["instructions"],
                tags["read_operands"],
                tags["write_operands"],
                tags["mean_operand_bytes"],
            )
        )
        lines.append(
            "  tag read histogram: %s"
            % " ".join(
                "%sB=%s" % (k, tags["read_histogram"][k])
                for k in ("1", "2", "3", "4")
            )
        )
    check = summary.get("crosscheck")
    if check is not None:
        lines.append(
            "  crosscheck: %s — %d records, %d values, %d violations "
            "(static slack %s)"
            % (
                "ok" if check["ok"] else "VIOLATED",
                check["records"],
                check["values_checked"],
                check["violations"],
                ", ".join(
                    "%s=+%.0f%%" % (name, 100.0 * slack)
                    for name, slack in zip(check["schemes"], check["slack"])
                ),
            )
        )
    return "\n".join(lines)


def _resolve_workloads(spec):
    """Parse a ``--workloads`` value; KeyError carries the unknown names."""
    names = [name.strip() for name in spec.split(",") if name.strip()]
    registry = all_workloads()
    unknown = sorted(set(names) - set(registry))
    if unknown:
        raise KeyError(", ".join(unknown))
    return [registry[name] for name in names]


def _resolve_cache_dir(args):
    """The effective cache directory: ``--cache-dir`` beats the env var."""
    return args.cache_dir if args.cache_dir is not None else default_cache_dir()


def _cache_main(argv):
    """Run ``repro cache info|clear``."""
    args = build_cache_parser().parse_args(argv)
    disarm = _arm_run(args)
    if disarm is None:
        return 2
    tracer = _install_tracer(args)
    try:
        return _cache_run(args)
    finally:
        _finish_tracer(tracer, args)
        disarm()


def _cache_run(args):
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        print(
            "no trace cache configured: pass --cache-dir or set $%s"
            % ENV_CACHE_DIR,
            file=sys.stderr,
        )
        return 2
    cache = TraceCache(cache_dir)
    results = ResultStore(cache_dir)
    if args.action == "clear":
        # No selector means both; either flag narrows the clear to it.
        clear_traces = args.traces or not args.results
        clear_results = args.results or not args.traces
        removed_traces = cache.clear() if clear_traces else 0
        removed_results = results.clear() if clear_results else 0
        print(
            "removed %d cache entries (%d traces, %d results) from %s"
            % (
                removed_traces + removed_results,
                removed_traces,
                removed_results,
                cache.root,
            )
        )
        return 0
    with tracing.span("cache.info", "session", dir=cache_dir):
        info = cache.info()
        result_info = results.info()
        runs_info = runlog.list_runs(cache_dir)
    if args.format == "json":
        # Trace fields stay top-level (the stable, scripted-against
        # shape); the result store and run manifests report under their
        # own keys.
        info = dict(info)
        info["results"] = result_info
        info["runs"] = runs_info
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print("trace cache: %s (codec v%d)" % (info["dir"], info["codec_version"]))
    print("entries: %d" % info["entries"])
    print("records: %d" % info["records"])
    print("encoded bytes: %d" % info["encoded_bytes"])
    print("fixed-width bytes: %d" % info["naive_bytes"])
    if info["naive_bytes"]:
        print(
            "compression ratio: %.3f (%.1f%% smaller than a fixed-width dump)"
            % (info["ratio"], 100.0 * (1.0 - info["ratio"]))
        )
    print(
        "result store: %d entries, %d bytes (store v%d)"
        % (
            result_info["entries"],
            result_info["bytes"],
            result_info["store_version"],
        )
    )
    if result_info["kinds"]:
        print(
            "result kinds: %s"
            % ", ".join(
                "%s=%d" % (kind, count)
                for kind, count in sorted(result_info["kinds"].items())
            )
        )
    if runs_info["entries"]:
        print(
            "run manifests: %d under %s (latest %s)"
            % (runs_info["entries"], runs_info["dir"], runs_info["latest"])
        )
    unreadable = info["unreadable"] + result_info["unreadable"]
    if unreadable:
        print("unreadable entries: %d" % unreadable, file=sys.stderr)
    return 0


def _list_main(args):
    """Run ``repro list``: enumerate every name a script might need."""
    from repro.core.compress import scheme_names
    from repro.pipeline.organizations import ALL_ORGANIZATIONS

    organizations = [org.name for org in ALL_ORGANIZATIONS]
    schemes = list(scheme_names())
    workload_names = sorted(all_workloads())
    kernels = kernel_names()
    default_kernel = (
        args.kernel if args.kernel is not None else default_kernel_name()
    )
    hierarchies = hierarchy_names()
    default_hierarchy = (
        args.hierarchy if args.hierarchy is not None
        else default_hierarchy_name()
    )
    if args.format == "json":
        payload = {
            "experiments": {
                name: EXPERIMENTS[name].description
                for name in sorted(EXPERIMENTS)
            },
            "organizations": organizations,
            "schemes": schemes,
            "workloads": workload_names,
            "kernels": kernels,
            "default_kernel": default_kernel,
            "hierarchies": hierarchies,
            "default_hierarchy": default_hierarchy,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print("  %-22s %s" % (name, EXPERIMENTS[name].description))
    print("organizations: %s" % ", ".join(organizations))
    print("schemes: %s" % ", ".join(schemes))
    print("workloads: %s" % ", ".join(workload_names))
    print(
        "kernels: %s"
        % ", ".join(
            "%s (default)" % name if name == default_kernel else name
            for name in kernels
        )
    )
    print(
        "hierarchies: %s"
        % ", ".join(
            "%s (default)" % name if name == default_hierarchy else name
            for name in hierarchies
        )
    )
    return 0


def main(argv=None):
    """CLI entry point."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["cache"]:
        return _cache_main(argv[1:])
    if argv[:1] == ["analyze"]:
        return _analyze_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        if args.kernel is not None:
            get_kernel(args.kernel)  # unknown names exit before any work
        else:
            default_kernel_name()  # validates $REPRO_KERNEL
        if args.hierarchy is not None:
            get_hierarchy(args.hierarchy)
        else:
            default_hierarchy_name()  # validates $REPRO_HIERARCHY
    except (KeyError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    if args.experiment == "list":
        return _list_main(args)
    disarm = _arm_run(args)
    if disarm is None:
        return 2
    tracer = _install_tracer(args)
    try:
        return _experiment_run(args, argv)
    finally:
        _finish_tracer(tracer, args)
        disarm()


def _experiment_run(args, argv):
    """Run one experiment (or ``all``) and report it."""
    workloads = None
    if args.workloads is not None:
        try:
            workloads = _resolve_workloads(args.workloads)
        except KeyError as error:
            print("unknown workload(s): %s" % error.args[0], file=sys.stderr)
            print(
                "available: %s" % ", ".join(sorted(all_workloads())),
                file=sys.stderr,
            )
            return 2
        if not workloads:
            print("--workloads names no workloads", file=sys.stderr)
            print(
                "available: %s" % ", ".join(sorted(all_workloads())),
                file=sys.stderr,
            )
            return 2
    cache_dir = _resolve_cache_dir(args)
    session = ExperimentSession(
        workloads=workloads,
        scale=args.scale,
        cache_dir=cache_dir,
        kernel=args.kernel,
        hierarchy=args.hierarchy,
        max_retries=args.max_retries,
        unit_timeout=args.unit_timeout,
    )
    faults.bind_registry(session.registry)
    names = None if args.experiment == "all" else [args.experiment]
    try:
        if args.experiment == "all" and args.format == "text" and args.jobs == 1:
            # Stream each report as it completes.
            for result in session.run_iter(names):
                print(session.format_result_block(result))
            _write_runlog(cache_dir, argv, args, session.registry)
            return 0
        results = session.run(names, jobs=args.jobs)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    _write_runlog(cache_dir, argv, args, session.registry)
    if args.format == "json":
        print(session.report_json(results))
    elif args.experiment == "all":
        print(session.report_text(results))
    else:
        print(results[0].text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
