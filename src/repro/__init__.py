"""repro — reproduction of "Very Low Power Pipelines using Significance Compression".

Canal, González and Smith (MICRO-33, 2000) propose compressing data,
addresses and instructions down to their numerically significant bytes,
with 2–3 extension bits flowing through a 5-stage pipeline to gate off
register, logic, cache and latch activity for the insignificant bytes.

This package is a full from-scratch reproduction:

* :mod:`repro.core` — the significance-compression schemes, significance
  ALU, PC-increment model and instruction compression.
* :mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.minic` — the MIPS-like
  ISA, assembler and C-subset compiler substrates.
* :mod:`repro.sim` — functional simulator, caches, TLBs and tracing.
* :mod:`repro.pipeline` — timing/activity models of the paper's seven
  pipeline organizations.
* :mod:`repro.workloads` — Mediabench-like benchmark kernels.
* :mod:`repro.study` — experiment harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import compress, significance_add
    word = compress(0x10000009)          # 2 significant bytes + ext bits
    result = significance_add(7, -3 & 0xFFFFFFFF)
    print(result.bytes_operated)         # bytes of ALU activity

"""

from repro.core import (
    BYTE_SCHEME,
    HALFWORD_SCHEME,
    TWO_BIT_SCHEME,
    BlockScheme,
    CompressedWord,
    FetchStatistics,
    InstructionCompressor,
    PatternCounter,
    compress,
    compression_ratio,
    pattern_of,
    significance_add,
    significance_compare,
    significance_logical,
    significance_shift,
)

__version__ = "1.0.0"

__all__ = [
    "BYTE_SCHEME",
    "HALFWORD_SCHEME",
    "TWO_BIT_SCHEME",
    "BlockScheme",
    "CompressedWord",
    "FetchStatistics",
    "InstructionCompressor",
    "PatternCounter",
    "compress",
    "compression_ratio",
    "pattern_of",
    "significance_add",
    "significance_compare",
    "significance_logical",
    "significance_shift",
    "__version__",
]
