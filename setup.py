"""Legacy setup shim.

The reproduction environment has no network access and no ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot build
their editable wheel.  This shim lets ``python setup.py develop`` perform
the equivalent editable install; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
