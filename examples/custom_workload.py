"""Scenario: evaluating significance compression on *your own* kernel.

Shows the full downstream-user workflow: write a kernel in MiniC,
validate it against a Python model, trace it on the simulator, and get
the paper's measurements (pattern mix, fetch footprint, per-stage
activity savings, CPI across organizations) for that kernel.

The kernel here is a fixed-point FIR filter — a typical embedded DSP
loop that is not part of the bundled Mediabench-like suite.

Run with::

    python examples/custom_workload.py
"""

from repro.core.icompress import FetchStatistics
from repro.core.patterns import PatternCounter
from repro.pipeline import ActivityModel, simulate
from repro.study.report import format_table, percent
from repro.workloads.base import Workload, format_int_array
from repro.workloads.inputs import audio_samples

TAPS = (3, -5, 12, 24, 12, -5, 3)
N_SAMPLES = 512


def fir_source(scale):
    samples = audio_samples(N_SAMPLES * scale, seed=0xF17)
    return """
%s
%s
int output[%d];

int main() {
    int n = %d;
    int taps = %d;
    int checksum = 0;
    for (int i = taps - 1; i < n; i += 1) {
        int acc = 0;
        for (int k = 0; k < taps; k += 1) {
            acc += coeff[k] * input[i - k];
        }
        acc >>= 6;
        output[i] = acc;
        checksum = (checksum * 31 + (acc & 0xFFFF)) & 0xFFFFFF;
    }
    print_int(checksum);
    return 0;
}
""" % (
        format_int_array("input", samples),
        format_int_array("coeff", TAPS),
        len(samples),
        len(samples),
        len(TAPS),
    )


def fir_reference(scale):
    samples = audio_samples(N_SAMPLES * scale, seed=0xF17)
    taps = len(TAPS)
    checksum = 0
    for i in range(taps - 1, len(samples)):
        acc = 0
        for k in range(taps):
            acc += TAPS[k] * samples[i - k]
        acc >>= 6
        checksum = (checksum * 31 + (acc & 0xFFFF)) & 0xFFFFFF
    return "%d" % checksum


FIR = Workload(
    "fir7",
    fir_source,
    fir_reference,
    "7-tap fixed-point FIR filter over synthetic PCM audio",
    category="custom",
)


def main():
    print("Validating the compiled kernel against the Python model...")
    FIR.verify(scale=1)
    records = FIR.trace(scale=1)
    print("OK — %d dynamic instructions.\n" % len(records))

    counter = PatternCounter()
    fetch = FetchStatistics()
    for record in records:
        for value in record.read_values:
            counter.record(value)
        fetch.record(record.instr)
    print("Operand significance patterns (top 4):")
    for pattern, pct, cumulative in counter.table()[:4]:
        print("  %s  %5.1f%%  (cumulative %5.1f%%)" % (pattern, pct, cumulative))
    print(
        "Fetch footprint: %.2f bytes/instruction (vs 4.00 uncompressed)\n"
        % fetch.average_bytes_per_instruction()
    )

    report = ActivityModel().process(records, name="fir7")
    rows = [
        (stage, percent(report.savings(stage)))
        for stage in ("fetch", "rf_read", "alu", "dcache_data", "pc", "latches")
    ]
    print(format_table(("stage", "activity saved"), rows))
    print()

    baseline = simulate("baseline32", records).cpi
    rows = []
    for organization in ("baseline32", "byte_serial", "byte_semi_parallel",
                         "parallel_skewed_bypass"):
        cpi = simulate(organization, records).cpi
        rows.append((organization, "%.3f" % cpi, "%+.1f%%" % (100 * (cpi / baseline - 1))))
    print(format_table(("organization", "CPI", "overhead"), rows))


if __name__ == "__main__":
    main()
