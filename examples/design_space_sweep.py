"""Scenario: sweeping the significance-compression design space.

Explores the two axes the paper opens up — block granularity (Section
2.1 / Tables 5-6) and PC-increment block size (Section 2.2 / Table 2) —
over several workloads, printing the kind of design-space table an
architect would use to pick an operating point.

Run with::

    python examples/design_space_sweep.py
"""

from repro.core.extension import BlockScheme
from repro.core.pc import BlockSerialPC, expected_activity_bits
from repro.pipeline import ActivityModel
from repro.study.report import format_table, percent
from repro.workloads import get_workload

WORKLOADS = ("rawcaudio", "cjpeg", "pegwit")


def granularity_sweep():
    print("== Granularity sweep: activity saving vs block width ==")
    rows = []
    traces = {name: get_workload(name).trace(scale=1) for name in WORKLOADS}
    for block_bits in (8, 16, 32):
        scheme = BlockScheme(block_bits)
        model = ActivityModel(scheme=scheme)
        for name in WORKLOADS:
            report = model.process(traces[name], name=name)
            rows.append(
                (
                    block_bits,
                    name,
                    percent(report.savings("rf_read")),
                    percent(report.savings("alu")),
                    percent(report.savings("dcache_data")),
                    percent(report.savings("latches")),
                )
            )
    print(
        format_table(
            ("block bits", "workload", "RF read", "ALU", "D$ data", "latches"),
            rows,
        )
    )
    print()


def pc_block_sweep():
    print("== PC incrementer block-size sweep (Table 2 on real streams) ==")
    rows = []
    traces = {name: get_workload(name).trace(scale=1) for name in WORKLOADS}
    for block_bits in (1, 2, 4, 8, 16, 32):
        model = BlockSerialPC(block_bits=block_bits)
        for name in WORKLOADS:
            previous = None
            for record in traces[name]:
                if previous is not None and record.pc != previous + 4:
                    model.redirect(record.pc)
                else:
                    model.increment()
                previous = record.pc
        rows.append(
            (
                block_bits,
                "%.4f" % expected_activity_bits(block_bits),
                "%.2f" % model.average_bits_per_update(),
                "%.3f" % model.average_cycles_per_update(),
                percent(model.activity_savings()),
            )
        )
    print(
        format_table(
            (
                "block bits",
                "analytic bits (seq.)",
                "measured bits",
                "cycles/update",
                "savings",
            ),
            rows,
        )
    )
    print()
    print("The paper picks 8-bit blocks: near-minimal latency with ~75% savings.")


if __name__ == "__main__":
    granularity_sweep()
    pc_block_sweep()
