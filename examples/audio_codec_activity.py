"""Scenario: energy profile of an embedded audio codec.

The paper's motivating domain is battery-powered media processing.  This
example takes the ADPCM speech encoder (Mediabench ``rawcaudio``), runs
it on the functional simulator, and answers the system designer's two
questions:

1. How much switching activity does significance compression remove at
   each pipeline stage (the paper's Table 5 row for this codec)?
2. What does each pipeline organization cost in performance, and what is
   the resulting activity-delay trade-off?

Run with::

    python examples/audio_codec_activity.py
"""

from repro.core.extension import BYTE_SCHEME, HALFWORD_SCHEME
from repro.pipeline import ActivityModel, simulate
from repro.pipeline.activity import STAGES
from repro.study.report import format_table, percent
from repro.workloads import get_workload


def activity_profile(records):
    print("Per-stage activity reduction (byte vs halfword granularity):")
    rows = []
    byte_report = ActivityModel(scheme=BYTE_SCHEME).process(records)
    half_report = ActivityModel(scheme=HALFWORD_SCHEME).process(records)
    for stage in STAGES:
        rows.append(
            (
                stage,
                percent(byte_report.savings(stage)),
                percent(half_report.savings(stage)),
            )
        )
    print(format_table(("stage", "byte", "halfword"), rows))
    print()
    return byte_report


def performance_tradeoff(records, byte_report):
    print("Organization trade-off (CPI vs datapath activity saving):")
    datapath_stages = ("rf_read", "rf_write", "alu", "dcache_data", "latches")
    base_bits = sum(byte_report.baseline[s] for s in datapath_stages)
    compressed_bits = sum(byte_report.compressed[s] for s in datapath_stages)
    activity_saving = 1.0 - compressed_bits / base_bits
    baseline_cpi = simulate("baseline32", records).cpi
    rows = []
    for organization in (
        "baseline32",
        "byte_serial",
        "halfword_serial",
        "byte_semi_parallel",
        "parallel_compressed",
        "parallel_skewed",
        "parallel_skewed_bypass",
    ):
        result = simulate(organization, records)
        saving = 0.0 if organization == "baseline32" else activity_saving
        overhead = result.cpi / baseline_cpi - 1.0
        rows.append(
            (
                organization,
                "%.3f" % result.cpi,
                "%+.1f%%" % (100 * overhead),
                percent(saving),
            )
        )
    print(
        format_table(
            ("organization", "CPI", "CPI overhead", "datapath activity saved"),
            rows,
        )
    )
    print()
    print(
        "Reading: the byte-serial design saves %s of datapath activity at a"
        % percent(activity_saving)
    )
    print(
        "large CPI cost; the skewed+bypasses design keeps nearly all of the"
    )
    print("saving at ~2% CPI overhead — the paper's headline conclusion.")


def main():
    workload = get_workload("rawcaudio")
    print("Workload:", workload.description)
    workload.verify(scale=1)
    print("Simulated output matches the reference encoder.\n")
    records = workload.trace(scale=1)
    byte_report = activity_profile(records)
    performance_tradeoff(records, byte_report)


if __name__ == "__main__":
    main()
