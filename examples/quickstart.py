"""Quickstart: the significance-compression public API in five minutes.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BYTE_SCHEME,
    TWO_BIT_SCHEME,
    compress,
    pattern_of,
    significance_add,
)
from repro.core.icompress import InstructionCompressor
from repro.isa.encoding import i_type
from repro.isa.encoding import decode
from repro.isa.opcodes import Opcode
from repro.minic import compile_program
from repro.pipeline import simulate
from repro.sim import Interpreter, load_program


def demo_data_compression():
    """Section 2.1: extension-bit compression of data values."""
    print("== Data significance compression ==")
    for value in (0x00000004, 0xFFFFF504, 0x10000009, 0x12345678):
        word = compress(value)
        print(
            "0x%08x  pattern=%s  stored=%d bytes + %d ext bits"
            % (
                value,
                pattern_of(value),
                word.num_significant_blocks,
                BYTE_SCHEME.num_ext_bits,
            )
        )
    narrow = compress(0x00000004, TWO_BIT_SCHEME)
    print("2-bit scheme stores 0x04 in %d bits total" % narrow.storage_bits)
    print()


def demo_significance_alu():
    """Section 2.5: the ALU only works on significant bytes."""
    print("== Significance ALU ==")
    result = significance_add(0x00000007, 0x00000003)
    print("7 + 3: %d byte(s) of ALU activity" % result.bytes_operated)
    wide = significance_add(0x12345678, 0x0BADF00D)
    print("wide + wide: %d byte(s) of ALU activity" % wide.bytes_operated)
    exception = significance_add(0x01, 0x7F)  # Table 4 exception case
    print(
        "0x01 + 0x7F = 0x%02x: %d bytes operated (Table 4 exception)"
        % (exception.value, exception.bytes_operated)
    )
    print()


def demo_instruction_compression():
    """Section 2.3: 3-byte instruction fetch."""
    print("== Instruction significance compression ==")
    compressor = InstructionCompressor()
    small_imm = decode(i_type(Opcode.ADDIU, rt=8, rs=8, imm=4))
    large_imm = decode(i_type(Opcode.ADDIU, rt=8, rs=8, imm=4000))
    for instr in (small_imm, large_imm):
        footprint = compressor.compress(instr)
        print(
            "%-24s -> %d bytes (%s)"
            % (instr.mnemonic + " imm=%d" % instr.imm, footprint.bytes_fetched,
               footprint.reason)
        )
    print()


def demo_end_to_end():
    """Compile MiniC, run it, and compare two pipeline organizations."""
    print("== End to end: MiniC -> trace -> CPI ==")
    program = compile_program(
        """
        int main() {
            int sum = 0;
            for (int i = 0; i < 1000; i += 1) { sum += i; }
            print_int(sum);
            return 0;
        }
        """
    )
    memory, machine = load_program(program)
    interpreter = Interpreter(memory, machine, trace=True)
    interpreter.run()
    print("program output:", interpreter.output_text)
    print("instructions executed:", interpreter.instructions_executed)
    for organization in ("baseline32", "byte_serial", "parallel_skewed_bypass"):
        result = simulate(organization, interpreter.trace_records)
        print("%-24s CPI %.3f" % (organization, result.cpi))


if __name__ == "__main__":
    demo_data_compression()
    demo_significance_alu()
    demo_instruction_compression()
    demo_end_to_end()
