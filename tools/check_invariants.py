"""Repo-invariant lint: cache-key coverage and payload-envelope checks.

The persistent caches (``repro.study.trace_cache`` /
``repro.study.result_store``) key every entry by fingerprints over the
*source files* that shape its contents.  Two invariants keep that
scheme honest, and both have failed silently before they were checked:

1. **Fingerprint coverage** — every module under the watched
   ``repro.*`` packages must either be covered by one of the
   ``fingerprint_sources`` package/module lists, or be explicitly
   declared orchestration-only in :data:`ORCHESTRATION_ONLY` below.  A
   new module fails this check until its author decides whether editing
   it must invalidate cached traces/results.

2. **Versioned payload envelopes** — every registered trace walker,
   pipeline kernel and hierarchy model must produce payloads that ride
   inside a versioned envelope (a ``version`` key stamped from a module
   constant and checked on load), so layout changes fail closed as
   cache misses instead of deserializing garbage.

Two documentation invariants ride along:

3. **CLI doc sync** — the generated section of ``docs/CLI.md`` must
   name exactly the option strings that ``repro.cli``'s parser builders
   define (both directions), so the reference cannot rot.

4. **Protocol docstrings** — the public protocol-surface modules (the
   same list ruff's ``D`` rules cover in ``pyproject.toml``) must
   docstring every public module/class/function/method, so the checked
   docs work even where ruff is not installed.

5. **Observability discipline** — ``repro.obs.tracing.span`` is the
   engine's one sanctioned stopwatch: no module under ``src/repro``
   outside ``repro/obs/`` may reference ``perf_counter`` (an ad-hoc
   timer would bypass the tracer and the metrics registry), and every
   module on the instrumented list must import ``repro.obs``.

6. **Scheme registration** — every compression scheme registered in
   ``repro.core.compress.SCHEME_REGISTRY`` must also be soundness
   cross-checked (a member of ``crosscheck.DEFAULT_SCHEMES``) and
   surfaced by ``repro list`` (the CLI references ``scheme_names``);
   every legacy ``extension.SCHEMES`` name must be in the registry.  A
   scheme that is registered but never cross-checked could silently
   under-claim bits in every table it appears in.

7. **Fault-point discipline** — every ``faults.fire("...")`` call site
   under ``src/repro`` must name a point registered in
   ``repro.obs.faults.POINTS`` (an unregistered point would silently
   never fire), every registered point must have at least one live call
   site outside ``faults.py`` (a dead point would let chaos specs pass
   vacuously), and every point must be documented (backticked) in
   ``docs/ROBUSTNESS.md``.

Everything here is AST-based: the checker parses sources, it never
imports ``repro`` (so it runs before the package does, and a syntax
error in the tree is itself a finding).  Run from the repo root:

    python tools/check_invariants.py
"""

import ast
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src")

#: Packages whose modules must all be fingerprint-covered or exempted.
WATCHED_PACKAGES = (
    "repro.minic",
    "repro.asm",
    "repro.isa",
    "repro.sim",
    "repro.core",
    "repro.pipeline",
    "repro.analysis",
    "repro.study",
    "repro.obs",
)

#: Modules that only orchestrate (schedule, cache, report): their
#: *identity* rides in cache keys through unit descriptors and the
#: store version, not through a source fingerprint.  Every name here is
#: a deliberate decision — a new study module must be added to either
#: this set or ``_ENGINE_MODULES`` before the check passes.
ORCHESTRATION_ONLY = frozenset((
    "repro.study",              # package __init__: re-exports only
    "repro.study.activity_study",
    "repro.study.cpi_study",
    "repro.study.experiments",
    "repro.study.funct_study",
    "repro.study.patterns_study",
    "repro.study.pc_study",
    "repro.study.report",
    "repro.study.result_store",  # keys carry STORE_VERSION instead
    "repro.study.scheduler",     # unit descriptors ride in keys
    "repro.study.session",
    "repro.study.trace_cache",   # keys carry CACHE_VERSION instead
    # Observability never shapes cached artifacts: spans and counters
    # describe a run, they do not feed results, so repro.obs stays
    # outside every fingerprint (editing it must not cold-start CI).
    "repro.obs",                # package __init__: re-exports only
    "repro.obs.faults",         # injection shapes failures, not results
    "repro.obs.metrics",
    "repro.obs.runlog",
    "repro.obs.tracing",
    # The supervisor decides *where/when* units run (retry, quarantine,
    # timeout) but delegates *what* they compute to the broker, whose
    # unit descriptors already ride in every cache key.
    "repro.study.supervisor",
))

#: (relative path, version constant) pairs: every stored-payload layout
#: must stamp and re-check one of these constants.
VERSION_ENVELOPES = (
    ("src/repro/study/walkers.py", "WALK_VERSION"),
    ("src/repro/analysis/driver.py", "ANALYSIS_VERSION"),
    ("src/repro/pipeline/base.py", "RESULT_SCHEMA_VERSION"),
    ("src/repro/pipeline/activity.py", "REPORT_SCHEMA_VERSION"),
    ("src/repro/core/icompress.py", "SCHEMA_VERSION"),
)


def _parse(relative_path):
    path = os.path.join(REPO_ROOT, relative_path)
    with open(path, "r", encoding="utf-8") as handle:
        return ast.parse(handle.read(), filename=relative_path)


def _tuple_of_strings(node):
    """The string elements of a tuple/list literal, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    items = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            return None
        items.append(element.value)
    return tuple(items)


def _assigned_string_tuple(tree, name):
    """The value of a module-level ``NAME = ("...", ...)`` assignment."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                return _tuple_of_strings(node.value)
    return None


def _iter_modules(package):
    """Dotted module names under one ``repro.*`` package, from disk."""
    root = os.path.join(SRC_ROOT, *package.split("."))
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            relative = os.path.relpath(
                os.path.join(dirpath, filename), SRC_ROOT
            )
            dotted = relative[: -len(".py")].replace(os.sep, ".")
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            yield dotted


def check_fingerprint_coverage(errors):
    """Invariant 1: watched modules are fingerprinted or exempted."""
    toolchain = _assigned_string_tuple(
        _parse("src/repro/study/trace_cache.py"), "_TOOLCHAIN_PACKAGES"
    )
    store_tree = _parse("src/repro/study/result_store.py")
    engine = _assigned_string_tuple(store_tree, "_ENGINE_PACKAGES")
    engine_modules = _assigned_string_tuple(store_tree, "_ENGINE_MODULES")
    for name, value in (
        ("trace_cache._TOOLCHAIN_PACKAGES", toolchain),
        ("result_store._ENGINE_PACKAGES", engine),
        ("result_store._ENGINE_MODULES", engine_modules),
    ):
        if value is None:
            errors.append(
                "%s is not a literal tuple of dotted names "
                "(the coverage check cannot read it)" % name
            )
    if errors:
        return
    covered_packages = tuple(toolchain) + tuple(engine)
    covered_modules = frozenset(engine_modules)
    for package in WATCHED_PACKAGES:
        for module in _iter_modules(package):
            if module in covered_modules or module in ORCHESTRATION_ONLY:
                continue
            if any(
                module == prefix or module.startswith(prefix + ".")
                for prefix in covered_packages
            ):
                continue
            errors.append(
                "module %s is in no fingerprint_sources list: add it to "
                "a fingerprinted package/module list (its edits must "
                "invalidate cached results) or to ORCHESTRATION_ONLY in "
                "tools/check_invariants.py (they must not)" % module
            )


def _has_int_constant(tree, name):
    """True when ``name`` is assigned an int literal (module or class)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets:
                value = node.value
                return isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                )
    return False


def _names_constant(node, name):
    """True when an expression references ``name`` (Name or attribute)."""
    return (isinstance(node, ast.Name) and node.id == name) or (
        isinstance(node, ast.Attribute) and node.attr == name
    )


def _stamps_version(tree, constant):
    """True for a dict literal ``{"version": CONSTANT, ...}`` anywhere."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "version"
                    and _names_constant(value, constant)
                ):
                    return True
    return False


def _checks_version(tree, constant):
    """True for a comparison against ``CONSTANT`` anywhere (the unwrap)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(_names_constant(op, constant) for op in operands):
                return True
    return False


def check_version_envelopes(errors):
    """Invariant 2a: every payload layout stamps + re-checks a version."""
    for relative_path, constant in VERSION_ENVELOPES:
        if not os.path.exists(os.path.join(REPO_ROOT, relative_path)):
            errors.append("%s: file missing" % relative_path)
            continue
        tree = _parse(relative_path)
        if not _has_int_constant(tree, constant):
            errors.append(
                "%s: no integer %s constant" % (relative_path, constant)
            )
            continue
        if not _stamps_version(tree, constant):
            errors.append(
                "%s: no payload dict stamps {'version': %s}"
                % (relative_path, constant)
            )
        if not _checks_version(tree, constant):
            errors.append(
                "%s: nothing compares a loaded payload against %s "
                "(stale envelopes would not fail closed)"
                % (relative_path, constant)
            )


def _class_defs(tree):
    return {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


def _module_string_constants(tree):
    """Module-level ``NAME = "literal"`` bindings."""
    constants = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            value = node.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = value.value
    return constants


def _class_string_attr(class_node, attribute, module_constants=()):
    """A class-level ``attribute = "..."`` string value, or None.

    Also resolves one level of indirection through a module-level
    string constant (``name = REFERENCE_KERNEL``).
    """
    for node in class_node.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if attribute in targets:
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in module_constants
                ):
                    return module_constants[value.id]
    return None


def _class_methods(class_node, classes):
    """Method names defined on a class or its in-module bases."""
    methods = {
        item.name
        for item in class_node.body
        if isinstance(item, ast.FunctionDef)
    }
    for base in class_node.bases:
        if isinstance(base, ast.Name) and base.id in classes:
            methods |= _class_methods(classes[base.id], classes)
    return methods


def check_registered_walkers(errors):
    """Invariant 2b: every WALKERS entry is a kind-tagged walker class."""
    relative_path = "src/repro/study/walkers.py"
    tree = _parse(relative_path)
    classes = _class_defs(tree)
    registered = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "WALKERS" not in targets:
            continue
        for inner in ast.walk(node.value):
            if isinstance(inner, ast.Name) and inner.id in classes:
                registered.append(inner.id)
    if not registered:
        errors.append(
            "%s: found no walker classes in the WALKERS registry"
            % relative_path
        )
        return
    for name in registered:
        class_node = classes[name]
        if _class_string_attr(class_node, "kind") is None:
            errors.append(
                "%s: registered walker %s has no string `kind` class "
                "attribute (its payloads cannot be spec-tagged)"
                % (relative_path, name)
            )
        methods = _class_methods(class_node, classes)
        for required in ("feed", "finish"):
            if required not in methods:
                errors.append(
                    "%s: registered walker %s does not define %s()"
                    % (relative_path, name, required)
                )


def check_registered_kernels(errors):
    """Invariant 2c: every @register_kernel class is name-tagged."""
    relative_path = "src/repro/pipeline/kernel.py"
    tree = _parse(relative_path)
    registered = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        and any(
            isinstance(decorator, ast.Name)
            and decorator.id == "register_kernel"
            for decorator in node.decorator_list
        )
    ]
    if not registered:
        errors.append(
            "%s: found no @register_kernel classes" % relative_path
        )
        return
    constants = _module_string_constants(tree)
    names = []
    for class_node in registered:
        name = _class_string_attr(class_node, "name", constants)
        if name is None:
            errors.append(
                "%s: registered kernel %s has no string `name` class "
                "attribute (its results cannot be keyed per backend)"
                % (relative_path, class_node.name)
            )
        else:
            names.append(name)
    duplicates = {name for name in names if names.count(name) > 1}
    for name in sorted(duplicates):
        errors.append(
            "%s: kernel name %r registered more than once"
            % (relative_path, name)
        )


def check_registered_hierarchies(errors):
    """Invariant 2d: every @register_hierarchy class is name-tagged."""
    relative_path = "src/repro/sim/hierarchy_model.py"
    tree = _parse(relative_path)
    registered = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
        and any(
            isinstance(decorator, ast.Name)
            and decorator.id == "register_hierarchy"
            for decorator in node.decorator_list
        )
    ]
    if not registered:
        errors.append(
            "%s: found no @register_hierarchy classes" % relative_path
        )
        return
    constants = _module_string_constants(tree)
    names = []
    for class_node in registered:
        name = _class_string_attr(class_node, "name", constants)
        if name is None:
            errors.append(
                "%s: registered hierarchy %s has no string `name` class "
                "attribute (its results cannot be keyed per backend)"
                % (relative_path, class_node.name)
            )
        else:
            names.append(name)
    duplicates = {name for name in names if names.count(name) > 1}
    for name in sorted(duplicates):
        errors.append(
            "%s: hierarchy name %r registered more than once"
            % (relative_path, name)
        )


#: Parser-builder functions in repro.cli whose add_argument() calls
#: define the documented CLI surface.
CLI_PARSER_BUILDERS = ("build_parser", "build_cache_parser",
                      "build_analyze_parser")

#: Markers delimiting the generated option reference in docs/CLI.md.
CLI_DOC_BEGIN = "<!-- generated:cli-options:begin -->"
CLI_DOC_END = "<!-- generated:cli-options:end -->"


def _cli_option_strings():
    """Every ``--option`` string a repro.cli parser builder defines."""
    tree = _parse("src/repro/cli.py")
    builders = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    options = set()
    # _add_cache_dir_option/_add_trace_out_option/_add_fault_option are
    # shared by every builder; charge their options to the common pool
    # rather than tracing call edges.
    for name in CLI_PARSER_BUILDERS + (
        "_add_cache_dir_option", "_add_trace_out_option",
        "_add_fault_option",
    ):
        builder = builders.get(name)
        if builder is None:
            continue
        for node in ast.walk(builder):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and node.args[0].value.startswith("--")
            ):
                options.add(node.args[0].value)
    return options


def check_cli_docs(errors):
    """Invariant 3: docs/CLI.md's generated section matches the parsers."""
    import re

    doc_path = "docs/CLI.md"
    full_path = os.path.join(REPO_ROOT, doc_path)
    if not os.path.exists(full_path):
        errors.append("%s: file missing" % doc_path)
        return
    with open(full_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    begin = text.find(CLI_DOC_BEGIN)
    end = text.find(CLI_DOC_END)
    if begin < 0 or end < 0 or end < begin:
        errors.append(
            "%s: generated section markers %r / %r missing or reordered"
            % (doc_path, CLI_DOC_BEGIN, CLI_DOC_END)
        )
        return
    section = text[begin:end]
    documented = set(re.findall(r"`(--[a-z][a-z-]*)`", section))
    defined = _cli_option_strings()
    if not defined:
        errors.append("src/repro/cli.py: found no add_argument options")
        return
    for option in sorted(defined - documented):
        errors.append(
            "%s: option %s is defined in repro.cli but absent from the "
            "generated section" % (doc_path, option)
        )
    for option in sorted(documented - defined):
        errors.append(
            "%s: option %s is documented but no repro.cli parser defines "
            "it" % (doc_path, option)
        )


#: Protocol-surface modules whose public API must be fully docstringed.
#: Keep in sync with the negated ruff per-file-ignores pattern in
#: pyproject.toml (this check also verifies that sync).
DOCSTRING_MODULES = (
    "src/repro/obs/faults.py",
    "src/repro/obs/metrics.py",
    "src/repro/obs/runlog.py",
    "src/repro/obs/tracing.py",
    "src/repro/pipeline/kernel.py",
    "src/repro/sim/hierarchy_model.py",
    "src/repro/study/scheduler.py",
    "src/repro/study/result_store.py",
    "src/repro/study/supervisor.py",
    "src/repro/study/walkers.py",
)


def check_docstrings(errors):
    """Invariant 4: protocol surfaces docstring every public definition.

    Mirrors ruff rules D100-D103 over :data:`DOCSTRING_MODULES` so the
    invariant holds in environments without ruff, and checks that every
    module here is named by pyproject's negated ``D`` ignore pattern.
    """
    for relative_path in DOCSTRING_MODULES:
        if not os.path.exists(os.path.join(REPO_ROOT, relative_path)):
            errors.append("%s: file missing" % relative_path)
            continue
        tree = _parse(relative_path)
        if not ast.get_docstring(tree):
            errors.append("%s: missing module docstring" % relative_path)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and not node.name.startswith(
                "_"
            ):
                if not ast.get_docstring(node):
                    errors.append(
                        "%s: public class %s has no docstring"
                        % (relative_path, node.name)
                    )
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and not item.name.startswith("_")
                        and not ast.get_docstring(item)
                    ):
                        errors.append(
                            "%s: public method %s.%s has no docstring"
                            % (relative_path, node.name, item.name)
                        )
        for node in tree.body:
            if (
                isinstance(node, ast.FunctionDef)
                and not node.name.startswith("_")
                and not ast.get_docstring(node)
            ):
                errors.append(
                    "%s: public function %s has no docstring"
                    % (relative_path, node.name)
                )
    pyproject = os.path.join(REPO_ROOT, "pyproject.toml")
    with open(pyproject, "r", encoding="utf-8") as handle:
        ignore_lines = [
            line for line in handle if line.lstrip().startswith('"!')
        ]
    pattern = "".join(ignore_lines)
    for relative_path in DOCSTRING_MODULES:
        stem = os.path.basename(relative_path)[: -len(".py")]
        if stem not in pattern:
            errors.append(
                "pyproject.toml: ruff docstring scope does not name %s "
                "(keep it in sync with DOCSTRING_MODULES)" % stem
            )


#: Modules carrying obs instrumentation: they must route timing and
#: counters through repro.obs rather than private stopwatches/dicts.
INSTRUMENTED_MODULES = (
    "src/repro/cli.py",
    "src/repro/pipeline/kernel.py",
    "src/repro/sim/hierarchy_model.py",
    "src/repro/sim/tracefile.py",
    "src/repro/study/result_store.py",
    "src/repro/study/scheduler.py",
    "src/repro/study/session.py",
    "src/repro/study/supervisor.py",
    "src/repro/study/trace_cache.py",
)


def _references_name(tree, name):
    """True when any expression references ``name`` (Name or attribute)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
        if isinstance(node, ast.Name) and node.id == name:
            return True
    return False


def _imports_package(tree, package):
    """True when the module imports ``package`` or anything under it."""
    prefix = package + "."
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == package or alias.name.startswith(prefix):
                    return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == package or module.startswith(prefix):
                return True
    return False


def check_observability(errors):
    """Invariant 5: all timing goes through repro.obs, nowhere else."""
    obs_root = os.path.join("src", "repro", "obs") + os.sep
    for dirpath, dirnames, filenames in os.walk(
        os.path.join(SRC_ROOT, "repro")
    ):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            relative = os.path.relpath(
                os.path.join(dirpath, filename), REPO_ROOT
            )
            if relative.startswith(obs_root):
                continue
            if _references_name(_parse(relative), "perf_counter"):
                errors.append(
                    "%s references perf_counter directly: time through "
                    "repro.obs.tracing.span (the one sanctioned stopwatch) "
                    "so the tracer and metrics registry observe it"
                    % relative
                )
    for relative_path in INSTRUMENTED_MODULES:
        if not os.path.exists(os.path.join(REPO_ROOT, relative_path)):
            errors.append("%s: file missing" % relative_path)
            continue
        if not _imports_package(_parse(relative_path), "repro.obs"):
            errors.append(
                "%s: instrumented module no longer imports repro.obs "
                "(its spans/metrics must come from the shared layer)"
                % relative_path
            )


def _assigned_dict_string_keys(tree, name):
    """The string keys of a module-level ``NAME = {...}`` dict literal."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets and isinstance(node.value, ast.Dict):
                keys = []
                for key in node.value.keys:
                    if not isinstance(key, ast.Constant) or not isinstance(
                        key.value, str
                    ):
                        return None
                    keys.append(key.value)
                return tuple(keys)
    return None


def _assigned_dict_value_names(tree, name):
    """Identifier names among a ``NAME = {...}`` dict literal's values."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if name in targets and isinstance(node.value, ast.Dict):
                return tuple(
                    value.id
                    for value in node.value.values
                    if isinstance(value, ast.Name)
                )
    return None


def check_registered_schemes(errors):
    """Invariant 6: registered schemes are cross-checked and listed."""
    registry_path = "src/repro/core/compress.py"
    crosscheck_path = "src/repro/analysis/crosscheck.py"
    registered = _assigned_dict_string_keys(
        _parse(registry_path), "SCHEME_REGISTRY"
    )
    if registered is None:
        errors.append(
            "%s: SCHEME_REGISTRY is not a dict literal with string keys "
            "(the registration check cannot read it)" % registry_path
        )
        return
    crosschecked = _assigned_string_tuple(
        _parse(crosscheck_path), "DEFAULT_SCHEMES"
    )
    if crosschecked is None:
        errors.append(
            "%s: DEFAULT_SCHEMES is not a literal tuple of scheme names"
            % crosscheck_path
        )
        return
    for name in registered:
        if name not in crosschecked:
            errors.append(
                "%s: registered scheme %r is not in crosscheck."
                "DEFAULT_SCHEMES — it would ship without a soundness "
                "gate" % (registry_path, name)
            )
    for name in crosschecked:
        if name not in registered:
            errors.append(
                "%s: DEFAULT_SCHEMES names %r but SCHEME_REGISTRY does "
                "not register it" % (crosscheck_path, name)
            )
    # The legacy extension.SCHEMES table keys by ``X.name`` attribute, so
    # compare the singleton identifiers its values reference instead:
    # every legacy scheme object must also be a registry value.
    legacy = _assigned_dict_value_names(
        _parse("src/repro/core/extension.py"), "SCHEMES"
    )
    registry_values = _assigned_dict_value_names(
        _parse(registry_path), "SCHEME_REGISTRY"
    )
    if legacy is None:
        errors.append(
            "src/repro/core/extension.py: SCHEMES is not a dict literal"
        )
    elif registry_values is not None:
        for name in legacy:
            if name not in registry_values:
                errors.append(
                    "src/repro/core/extension.py: scheme singleton %s is "
                    "absent from compress.SCHEME_REGISTRY" % name
                )
    if not _references_name(_parse("src/repro/cli.py"), "scheme_names"):
        errors.append(
            "src/repro/cli.py: `repro list` no longer references "
            "scheme_names (registered schemes must stay enumerable)"
        )


#: The fault-injection module registering POINTS and defining fire().
FAULTS_PATH = "src/repro/obs/faults.py"

#: The document that must catalog every registered fault point.
ROBUSTNESS_DOC = "docs/ROBUSTNESS.md"


def _fired_points():
    """``(relative_path, point)`` for every faults.fire("...") in src."""
    fired = []
    faults_relative = FAULTS_PATH.replace("/", os.sep)
    for dirpath, dirnames, filenames in os.walk(
        os.path.join(SRC_ROOT, "repro")
    ):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            relative = os.path.relpath(
                os.path.join(dirpath, filename), REPO_ROOT
            )
            if relative == faults_relative:
                continue
            for node in ast.walk(_parse(relative)):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fire"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "faults"
                ):
                    continue
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    fired.append((relative, node.args[0].value))
                else:
                    fired.append((relative, None))
    return fired


def check_fault_points(errors):
    """Invariant 7: fire() sites and POINTS and the docs agree."""
    registered = _assigned_dict_string_keys(_parse(FAULTS_PATH), "POINTS")
    if registered is None:
        errors.append(
            "%s: POINTS is not a dict literal with string keys (the "
            "fault-point check cannot read it)" % FAULTS_PATH
        )
        return
    fired = _fired_points()
    for relative, point in fired:
        if point is None:
            errors.append(
                "%s: faults.fire() called with a non-literal point name "
                "(the point catalog must be statically checkable)"
                % relative
            )
        elif point not in registered:
            errors.append(
                "%s: faults.fire(%r) names a point that POINTS does not "
                "register — it would never fire" % (relative, point)
            )
    live = {point for _, point in fired if point is not None}
    for point in registered:
        if point not in live:
            errors.append(
                "%s: registered point %r has no faults.fire() call site "
                "under src/repro — chaos specs naming it pass vacuously"
                % (FAULTS_PATH, point)
            )
    doc_path = os.path.join(REPO_ROOT, ROBUSTNESS_DOC)
    if not os.path.exists(doc_path):
        errors.append("%s: file missing" % ROBUSTNESS_DOC)
        return
    with open(doc_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for point in registered:
        if "`%s`" % point not in text:
            errors.append(
                "%s: registered point %r is not documented (backticked) "
                "in the point catalog" % (ROBUSTNESS_DOC, point)
            )


def main():
    errors = []
    check_fingerprint_coverage(errors)
    check_version_envelopes(errors)
    check_registered_walkers(errors)
    check_registered_kernels(errors)
    check_registered_hierarchies(errors)
    check_registered_schemes(errors)
    check_fault_points(errors)
    check_cli_docs(errors)
    check_docstrings(errors)
    check_observability(errors)
    if errors:
        for error in errors:
            print("check_invariants: %s" % error, file=sys.stderr)
        print(
            "check_invariants: %d invariant violation(s)" % len(errors),
            file=sys.stderr,
        )
        return 1
    print("check_invariants: all repo invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
